package queue

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"

	"sftree/internal/conformance"
	"sftree/internal/core"
	"sftree/internal/dynamic"
	"sftree/internal/netgen"
	"sftree/internal/nfv"
)

// arrival is one scripted enqueue: a task plus an optional deadline
// offset from the script's start.
type arrival struct {
	task     nfv.Task
	deadline time.Duration // 0 = no deadline
}

// makeScript builds a fixed-seed arrival script whose chains repeat
// (tasks are drawn from a small pool, so signature groups form) and
// whose deadlines mix none, generous, and tight-but-feasible.
func makeScript(t *testing.T, seed int64, n int) (*nfv.Network, []arrival) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	net, err := netgen.Generate(netgen.PaperConfig(30, 2), rng)
	if err != nil {
		t.Fatal(err)
	}
	pool := make([]nfv.Task, 5)
	for i := range pool {
		task, err := netgen.GenerateTask(net, rng, 2+i%3, 2+i%2)
		if err != nil {
			t.Fatal(err)
		}
		pool[i] = task
	}
	script := make([]arrival, n)
	for i := range script {
		script[i].task = pool[rng.Intn(len(pool))]
		switch rng.Intn(3) {
		case 1:
			script[i].deadline = 10 * time.Second
		case 2:
			script[i].deadline = 20 * time.Second
		}
	}
	return net, script
}

func embJSON(t *testing.T, sess *dynamic.Session) string {
	t.Helper()
	blob, err := json.Marshal(sess.Result.Embedding)
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

// TestQueueEquivalenceBattery is the headline gate: fixed-seed arrival
// scripts replayed through a one-worker queue and through serialized
// AdmitCtx calls on an identical network clone, in the queue's
// recorded dispatch order, must produce bit-identical admission
// decisions — same per-task outcome, session IDs, embedding bytes,
// cost bits, ref ledger and accounting — and both final states must
// pass the conformance validator.
func TestQueueEquivalenceBattery(t *testing.T) {
	for _, tc := range []struct {
		seed   int64
		n      int
		window time.Duration
	}{
		{seed: 1, n: 24, window: 0},
		{seed: 2, n: 24, window: 2 * time.Millisecond},
		{seed: 3, n: 32, window: 10 * time.Millisecond},
		{seed: 4, n: 16, window: 50 * time.Millisecond},
	} {
		t.Run("", func(t *testing.T) {
			netQ, script := makeScript(t, tc.seed, tc.n)
			netS := netQ.Clone()
			mQ := dynamic.NewManager(netQ, core.Options{})
			mS := dynamic.NewManager(netS, core.Options{})

			q := New(Config{
				Depth:       len(script),
				BatchWindow: tc.window,
				Workers:     1,
				Manager:     func() *dynamic.Manager { return mQ },
			})
			start := time.Now()
			tickets := make([]*Ticket, len(script))
			for i, a := range script {
				var deadline time.Time
				if a.deadline != 0 {
					deadline = start.Add(a.deadline)
				}
				tk, err := q.Enqueue(context.Background(), a.task, deadline)
				if err != nil {
					t.Fatalf("enqueue %d: %v", i, err)
				}
				tickets[i] = tk
			}
			for i, tk := range tickets {
				if _, err := tk.Wait(context.Background()); err != nil && !errors.Is(err, dynamic.ErrRejected) {
					t.Fatalf("ticket %d: unexpected terminal error %v", i, err)
				}
			}
			closeQueue(t, q)

			// Serial replay in the queue's recorded dispatch order.
			ordered := append([]*Ticket(nil), tickets...)
			sort.Slice(ordered, func(i, j int) bool { return ordered[i].order < ordered[j].order })
			for _, tk := range ordered {
				if tk.order < 0 {
					t.Fatalf("ticket never dispatched (err %v)", tk.err)
				}
				sessS, errS := mS.AdmitCtx(context.Background(), tk.task)
				if (tk.err == nil) != (errS == nil) {
					t.Fatalf("order %d: queue err %v, serial err %v", tk.order, tk.err, errS)
				}
				if errS != nil {
					continue
				}
				if tk.sess.ID != sessS.ID {
					t.Fatalf("order %d: session ID %d vs %d", tk.order, tk.sess.ID, sessS.ID)
				}
				if a, b := embJSON(t, tk.sess), embJSON(t, sessS); a != b {
					t.Fatalf("order %d: embeddings diverge:\n%s\n%s", tk.order, a, b)
				}
				if a, b := tk.sess.Result.FinalCost, sessS.Result.FinalCost; math.Float64bits(a) != math.Float64bits(b) {
					t.Fatalf("order %d: cost %v vs %v", tk.order, a, b)
				}
			}

			sQ, sS := mQ.Stats(), mS.Stats()
			if sQ.Admitted != sS.Admitted || sQ.Rejected != sS.Rejected || sQ.Active != sS.Active {
				t.Fatalf("stats diverge: queue %+v serial %+v", sQ, sS)
			}
			if math.Float64bits(sQ.AdmittedCost) != math.Float64bits(sS.AdmittedCost) {
				t.Fatalf("accounting diverges: %v vs %v", sQ.AdmittedCost, sS.AdmittedCost)
			}
			refsQ, refsS := mQ.Refs(), mS.Refs()
			if len(refsQ) != len(refsS) {
				t.Fatalf("ref ledgers diverge: %d vs %d", len(refsQ), len(refsS))
			}
			for key, nref := range refsQ {
				if refsS[key] != nref {
					t.Fatalf("refs[%v] = %d vs %d", key, nref, refsS[key])
				}
			}
			for _, m := range []*dynamic.Manager{mQ, mS} {
				for _, sess := range m.Sessions() {
					if err := conformance.CheckLive(m.Network(), sess.Result.Embedding); err != nil {
						t.Errorf("session %d: conformance: %v", sess.ID, err)
					}
				}
				if err := m.VerifyRefs(); err != nil {
					t.Errorf("refs: %v", err)
				}
			}
		})
	}
}
