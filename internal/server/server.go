// Package server exposes the solver suite over HTTP, the way an SDN
// controller would consume it (the paper's setting is centralized
// computation in an SDN control plane). It offers stateless solving
// and rendering endpoints that carry the full instance in the request,
// plus a stateful session API backed by the dynamic manager on the
// network the server was started with.
//
//	GET    /healthz               liveness probe
//	GET    /readyz                readiness probe (network + session API state)
//	GET    /metrics               JSON metrics snapshot (counters/gauges/floats/histograms)
//	GET    /debug/traces          recent request-scoped solver span trees (bounded ring)
//	POST   /v1/solve              {instance, algorithm?, seed?} -> embedding + costs
//	POST   /v1/validate           {instance, embedding} -> verdict + replay
//	POST   /v1/render             {instance, algorithm?} -> image/svg+xml
//	POST   /v1/sessions           task -> admitted session (server network)
//	GET    /v1/sessions           manager statistics
//	DELETE /v1/sessions/{id}      release a session
//
// Every request passes through the obs middleware: request IDs,
// structured access logs, per-route latency histograms and an
// in-flight gauge. Solver phase events feed the same registry, so
// /metrics shows where stage-2 time goes under live traffic.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"sftree/internal/baseline"
	"sftree/internal/conformance"
	"sftree/internal/core"
	"sftree/internal/dynamic"
	"sftree/internal/exact"
	"sftree/internal/nfv"
	"sftree/internal/obs"
	"sftree/internal/queue"
	"sftree/internal/viz"
)

// MaxBodyBytes caps request bodies.
const MaxBodyBytes = 16 << 20

// Config carries the optional observability wiring.
type Config struct {
	// Registry receives HTTP, solver and session metrics; nil creates
	// a private registry (reachable via Server.Registry).
	Registry *obs.Registry
	// Logger emits structured access logs; nil disables them.
	Logger *slog.Logger
	// Observer, when set, additionally receives every solver phase
	// event (on top of the registry bridge) — e.g. a JSON-lines
	// streamer for request tracing.
	Observer core.Observer
	// SolveTimeout caps how long any one solve or admission may run.
	// The solver has anytime semantics: on expiry it returns the best
	// feasible embedding found so far with EarlyStop set, so a timeout
	// degrades optimization quality, never correctness. Requests may
	// ask for a shorter deadline (timeout_ms); they cannot exceed this
	// ceiling. Zero means no server-side cap.
	SolveTimeout time.Duration
	// Traces receives one request-scoped span tree per solve, admission
	// and fault-repair run, served back at GET /debug/traces; nil
	// creates a private ring of obs.DefaultTraceCap traces (reachable
	// via Server.Traces).
	Traces *obs.TraceBuffer
	// Manager, when set, backs the stateful session API instead of a
	// freshly constructed one — the WAL-restore boot path builds the
	// manager first (rehydrated from disk) and hands it over. The
	// server instruments and traces it; net must be the manager's
	// network.
	Manager *dynamic.Manager
	// QueueDepth, when positive, routes POST /v1/sessions through the
	// bounded async admission queue instead of solving inline: requests
	// enqueue with their deadline, a dispatcher batches them by chain
	// signature, and overflow answers 429 with Retry-After. Zero keeps
	// the inline path.
	QueueDepth int
	// BatchWindow is how long the queue dispatcher lingers so a burst
	// pools into one batch (queued mode only). Zero dispatches
	// immediately.
	BatchWindow time.Duration
	// QueueWorkers bounds concurrent signature groups per batch. The
	// default 1 keeps batched admissions bit-identical to serialized
	// ones in dispatch order.
	QueueWorkers int
}

// Server is the HTTP facade. Create it with New or NewWith; it
// implements http.Handler.
type Server struct {
	mux *http.ServeMux
	h   http.Handler // mux wrapped in the obs middleware
	// mgrMu guards mgr: the restart harness swaps in a freshly
	// restored manager while requests are in flight (SetManager), so
	// every handler takes one consistent reference per request.
	mgrMu   sync.RWMutex
	mgr     *dynamic.Manager
	net     *nfv.Network
	reg     *obs.Registry
	traces  *obs.TraceBuffer
	opts    core.Options // base solver options, observer attached
	timeout time.Duration
	// q, when non-nil, is the async admission pipeline behind POST
	// /v1/sessions (see Config.QueueDepth).
	q *queue.Queue
}

// New builds a server with default observability (private registry, no
// access logs). net backs the stateful session API and may be nil, in
// which case only the stateless endpoints are served.
func New(net *nfv.Network, opts core.Options) *Server {
	return NewWith(net, opts, Config{})
}

// NewWith builds a server with explicit observability wiring.
func NewWith(net *nfv.Network, opts core.Options, cfg Config) *Server {
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	// Cache and pool telemetry is process-global; registering the
	// callback gauges per server is idempotent (same names, same
	// sources), so every registry scraping this server sees them.
	obs.RegisterCacheStats(reg)
	traces := cfg.Traces
	if traces == nil {
		traces = obs.NewTraceBuffer(0)
	}
	opts.Observer = obs.Tee(opts.Observer, cfg.Observer, obs.NewMetricsObserver(reg))
	s := &Server{mux: http.NewServeMux(), net: net, reg: reg, traces: traces,
		opts: opts, timeout: cfg.SolveTimeout}
	if cfg.Manager != nil {
		s.mgr = cfg.Manager.Instrument(reg).Trace(traces)
	} else if net != nil {
		s.mgr = dynamic.NewManager(net, opts).Instrument(reg).Trace(traces)
	}
	if cfg.QueueDepth > 0 && s.mgr != nil {
		// The provider indirects through Manager() so the queue keeps
		// working across the restart harness's hot swap.
		s.q = queue.New(queue.Config{
			Depth:       cfg.QueueDepth,
			BatchWindow: cfg.BatchWindow,
			Workers:     cfg.QueueWorkers,
			Manager:     s.Manager,
		}).Instrument(reg)
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.Handle("GET /metrics", reg.Handler())
	s.mux.Handle("GET /debug/traces", traces.Handler())
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("POST /v1/validate", s.handleValidate)
	s.mux.HandleFunc("POST /v1/render", s.handleRender)
	s.mux.HandleFunc("POST /v1/sessions", s.handleAdmit)
	s.mux.HandleFunc("GET /v1/sessions", s.handleSessionStats)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleRelease)
	s.mux.HandleFunc("/", s.handleFallback)
	// Recover sits inside Middleware so the access log and status-class
	// counters record the synthesized 500.
	s.h = obs.Middleware(reg, cfg.Logger, obs.Recover(reg, cfg.Logger, s.mux))
	return s
}

// Registry exposes the server's metrics registry (for embedding into a
// wider process registry or asserting in tests).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Traces exposes the server's trace ring (the buffer behind GET
// /debug/traces).
func (s *Server) Traces() *obs.TraceBuffer { return s.traces }

// Manager exposes the dynamic session manager backing the stateful
// API, nil for stateless servers. In-process harnesses (cmd/sftload's
// self-serve mode) use it to drive fault rebases against the same
// network the HTTP admissions run on.
func (s *Server) Manager() *dynamic.Manager {
	s.mgrMu.RLock()
	defer s.mgrMu.RUnlock()
	return s.mgr
}

// Queue exposes the async admission pipeline, nil when the server
// solves inline (Config.QueueDepth == 0). The process's shutdown
// sequence closes it between the HTTP drain and Manager.Drain.
func (s *Server) Queue() *queue.Queue { return s.q }

// SetManager swaps the session manager backing the stateful API — the
// crash-restart harness kills the old manager's WAL and installs the
// one Restore rehydrated from disk. In-flight requests finish against
// the manager they already hold; new requests see the replacement.
// The caller instruments the new manager before the swap.
func (s *Server) SetManager(m *dynamic.Manager) {
	s.mgrMu.Lock()
	defer s.mgrMu.Unlock()
	s.mgr = m
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, MaxBodyBytes)
	s.h.ServeHTTP(w, r)
}

var _ http.Handler = (*Server)(nil)

// SolveRequest is the body of POST /v1/solve and /v1/render.
type SolveRequest struct {
	Instance  nfv.InstanceDoc `json:"instance"`
	Algorithm string          `json:"algorithm,omitempty"` // msa (default), msa1, sca, rsa, bks
	Seed      int64           `json:"seed,omitempty"`      // rsa only
	// TimeoutMS asks for a solve deadline in milliseconds. The solver
	// stops optimizing at the deadline and returns its best feasible
	// embedding so far (EarlyStop in the response). Capped by the
	// server's Config.SolveTimeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// SolveResponse is the body of a successful solve.
type SolveResponse struct {
	Algorithm string            `json:"algorithm"`
	Embedding *nfv.Embedding    `json:"embedding"`
	Cost      nfv.CostBreakdown `json:"cost"`
	Stage1    float64           `json:"stage1_cost"`
	Moves     int               `json:"moves_accepted"`
	// EarlyStop reports that the deadline expired mid-solve; the
	// embedding is the best feasible one found by then.
	EarlyStop bool `json:"early_stop,omitempty"`
}

// ValidateRequest is the body of POST /v1/validate.
type ValidateRequest struct {
	Instance  nfv.InstanceDoc `json:"instance"`
	Embedding *nfv.Embedding  `json:"embedding"`
}

// ValidateResponse reports the verdict of POST /v1/validate.
type ValidateResponse struct {
	Valid     bool              `json:"valid"`
	Reason    string            `json:"reason,omitempty"`
	Cost      nfv.CostBreakdown `json:"cost"`
	Delivered int               `json:"delivered"`
}

// AdmitResponse is the body of a successful admission.
type AdmitResponse struct {
	ID   dynamic.SessionID `json:"id"`
	Cost float64           `json:"cost"`
	// EarlyStop reports that the admission deadline expired mid-solve;
	// the session holds the best feasible embedding found by then.
	EarlyStop bool `json:"early_stop,omitempty"`
	// WaitMS is the time the request spent queued before its solve
	// slot started; zero on the inline (unqueued) path. SolveMS is the
	// solve-and-commit time alone — clients can split saturation-born
	// queueing delay from solver cost.
	WaitMS  float64 `json:"wait_ms,omitempty"`
	SolveMS float64 `json:"solve_ms,omitempty"`
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v) // headers are sent; nothing left to do on error
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReady reports readiness, distinct from liveness: whether the
// stateful session API is backed by a network and how many sessions
// are live. A stateless server is ready by construction. Durability
// trouble — WAL append failures, or a divergence a snapshot has not
// yet healed — degrades the reported status (still HTTP 200: the
// instance keeps serving, but operators and probes see it).
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	mgr := s.Manager()
	resp := map[string]any{"status": "ready", "sessions_api": mgr != nil}
	if mgr != nil {
		resp["active_sessions"] = mgr.Active()
		if st := mgr.Stats(); st.WALAppendErrors > 0 || st.CheckpointDirty {
			resp["status"] = "degraded"
			resp["wal_append_errors"] = st.WALAppendErrors
			resp["wal_checkpoint_dirty"] = st.CheckpointDirty
		}
	}
	if s.q != nil {
		qs := s.q.Stats()
		resp["queue_depth"] = qs.Depth
		resp["queue_capacity"] = qs.Capacity
		if qs.Saturated {
			// A full queue answers 429 until a batch drains: surface it
			// to probes so load balancers shift traffic away.
			resp["status"] = "degraded"
			resp["queue_saturated"] = true
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleFallback turns unmatched routes into the same JSON error
// envelope the API handlers use, instead of net/http's text 404.
func (s *Server) handleFallback(w http.ResponseWriter, r *http.Request) {
	writeError(w, http.StatusNotFound, fmt.Errorf("no route for %s %s", r.Method, r.URL.Path))
}

// maxTimeoutMS is the largest timeout_ms that still converts to a
// time.Duration without overflowing.
const maxTimeoutMS = math.MaxInt64 / int64(time.Millisecond)

// checkTimeoutMS rejects timeout_ms values solveContext could not
// honor: negatives and values whose millisecond conversion overflows.
func checkTimeoutMS(ms int64) error {
	if ms < 0 {
		return fmt.Errorf("negative timeout_ms %d", ms)
	}
	if ms > maxTimeoutMS {
		return fmt.Errorf("timeout_ms %d overflows (max %d)", ms, maxTimeoutMS)
	}
	return nil
}

// solveLimit resolves the effective deadline budget for one solve:
// the request's timeout_ms (if any) capped by the server-wide
// SolveTimeout ceiling. Zero means unbounded.
func (s *Server) solveLimit(timeoutMS int64) time.Duration {
	limit := s.timeout
	if timeoutMS > 0 {
		asked := time.Duration(timeoutMS) * time.Millisecond
		if limit <= 0 || asked < limit {
			limit = asked
		}
	}
	return limit
}

// solveContext derives the deadline for one solve: the request's
// timeout_ms (if any) capped by the server-wide SolveTimeout ceiling.
// The returned cancel must always be called.
func (s *Server) solveContext(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	limit := s.solveLimit(timeoutMS)
	if limit <= 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, limit)
}

// runAlgorithm dispatches one stateless solve under the server's base
// options (observer included, so every solve feeds /metrics). ctx
// bounds the solve; the two-stage solver stops at the deadline with
// its best feasible embedding (baselines run to completion). extra,
// when non-nil, additionally observes this request's solver events
// (the per-request trace recorder).
func (s *Server) runAlgorithm(ctx context.Context, req *SolveRequest, extra core.Observer) (*core.Result, error) {
	net, task := req.Instance.Network, req.Instance.Task
	if net == nil {
		return nil, errors.New("request carries no network")
	}
	opts := s.opts
	opts.Ctx = ctx
	opts.Observer = obs.Tee(opts.Observer, extra)
	switch req.Algorithm {
	case "", "msa":
		return core.Solve(net, task, opts)
	case "msa1":
		return core.SolveStageOne(net, task, opts)
	case "sca":
		return baseline.SCA(net, task, opts)
	case "rsa":
		return baseline.RSA(net, task, rand.New(rand.NewSource(req.Seed)), opts)
	case "onenode":
		return baseline.OneNode(net, task, opts)
	case "bks":
		res, err := exact.BestKnown(net, task)
		if err != nil {
			return nil, err
		}
		return res.Result, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", req.Algorithm)
	}
}

func decodeBody[T any](w http.ResponseWriter, r *http.Request, dst *T) bool {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(dst); err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, fmt.Errorf("decode request: %w", err))
		return false
	}
	return true
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := checkTimeoutMS(req.TimeoutMS); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.solveContext(r, req.TimeoutMS)
	defer cancel()
	rec, finish := s.traces.StartTrace("solve", obs.RequestID(r.Context()))
	res, err := s.runAlgorithm(ctx, &req, rec)
	finish(s.opts.Parallelism, res, err)
	if err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, nfv.ErrInvalidTask) {
			status = http.StatusBadRequest
		}
		writeError(w, status, err)
		return
	}
	algo := req.Algorithm
	if algo == "" {
		algo = "msa"
	}
	writeJSON(w, http.StatusOK, SolveResponse{
		Algorithm: algo,
		Embedding: res.Embedding,
		Cost:      req.Instance.Network.Cost(res.Embedding),
		Stage1:    res.Stage1Cost,
		Moves:     res.MovesAccepted,
		EarlyStop: res.EarlyStop,
	})
}

func (s *Server) handleValidate(w http.ResponseWriter, r *http.Request) {
	var req ValidateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Instance.Network == nil || req.Embedding == nil {
		writeError(w, http.StatusBadRequest, errors.New("need both instance and embedding"))
		return
	}
	resp := ValidateResponse{Valid: true}
	if err := conformance.Check(req.Instance.Network, req.Embedding); err != nil {
		resp.Valid = false
		resp.Reason = err.Error()
	} else {
		resp.Cost = req.Instance.Network.Cost(req.Embedding)
		resp.Delivered = len(req.Embedding.Task.Destinations)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleRender(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := checkTimeoutMS(req.TimeoutMS); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.solveContext(r, req.TimeoutMS)
	defer cancel()
	rec, finish := s.traces.StartTrace("render", obs.RequestID(r.Context()))
	res, err := s.runAlgorithm(ctx, &req, rec)
	finish(s.opts.Parallelism, res, err)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	blob, err := viz.RenderSVG(req.Instance.Network, res.Embedding, viz.Options{Title: "sftserve"})
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(blob)
}

func (s *Server) handleAdmit(w http.ResponseWriter, r *http.Request) {
	mgr := s.Manager()
	if mgr == nil {
		writeError(w, http.StatusNotImplemented, errors.New("server started without a network"))
		return
	}
	var task nfv.Task
	if !decodeBody(w, r, &task) {
		return
	}
	// Admissions carry the deadline as ?timeout_ms= (the body is the
	// bare task); the server ceiling applies either way.
	var timeoutMS int64
	if q := r.URL.Query().Get("timeout_ms"); q != "" {
		ms, err := strconv.ParseInt(q, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad timeout_ms %q", q))
			return
		}
		if err := checkTimeoutMS(ms); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		timeoutMS = ms
	}
	if s.q != nil {
		s.admitQueued(w, r, task, timeoutMS)
		return
	}
	ctx, cancel := s.solveContext(r, timeoutMS)
	defer cancel()
	sess, err := mgr.AdmitCtx(ctx, task)
	if err != nil {
		writeError(w, admitStatus(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, AdmitResponse{
		ID:        sess.ID,
		Cost:      sess.Result.FinalCost,
		EarlyStop: sess.Result.EarlyStop,
	})
}

// admitStatus maps an admission error to its HTTP status: malformed
// tasks 400, capacity rejections 409.
func admitStatus(err error) int {
	if errors.Is(err, nfv.ErrInvalidTask) {
		return http.StatusBadRequest
	}
	return http.StatusConflict
}

// retryAfter is the back-off hint attached to 429 responses (queue
// overflow or a deadline that expired before a solve slot opened): one
// batch window is long past by then, so one second is a conservative
// "the queue has turned over" bound.
const retryAfter = "1"

// admitQueued is the queued admission path: the request enqueues with
// its deadline (timeout_ms capped by the server ceiling, converted to
// an absolute instant) and blocks on the ticket. Overflow and
// in-queue expiry answer 429 with Retry-After; a closed queue or a
// missing manager answer 503 (drain in progress / mid-restart).
func (s *Server) admitQueued(w http.ResponseWriter, r *http.Request, task nfv.Task, timeoutMS int64) {
	var deadline time.Time
	if limit := s.solveLimit(timeoutMS); limit > 0 {
		deadline = time.Now().Add(limit)
	}
	tk, err := s.q.Enqueue(r.Context(), task, deadline)
	var sess *dynamic.Session
	if err == nil {
		sess, err = tk.Wait(r.Context())
	}
	switch {
	case err == nil:
	case errors.Is(err, queue.ErrQueueFull), errors.Is(err, queue.ErrExpired):
		w.Header().Set("Retry-After", retryAfter)
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, queue.ErrClosed), errors.Is(err, queue.ErrUnavailable):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, dynamic.ErrRejected), errors.Is(err, nfv.ErrInvalidTask):
		writeError(w, admitStatus(err), err)
		return
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The client went away while queued; the admission itself
		// still resolves inside the dispatcher.
		writeError(w, http.StatusServiceUnavailable, err)
		return
	default:
		writeError(w, admitStatus(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, AdmitResponse{
		ID:        sess.ID,
		Cost:      sess.Result.FinalCost,
		EarlyStop: sess.Result.EarlyStop,
		WaitMS:    float64(tk.WaitDuration()) / float64(time.Millisecond),
		SolveMS:   float64(tk.SolveDuration()) / float64(time.Millisecond),
	})
}

func (s *Server) handleSessionStats(w http.ResponseWriter, _ *http.Request) {
	mgr := s.Manager()
	if mgr == nil {
		writeError(w, http.StatusNotImplemented, errors.New("server started without a network"))
		return
	}
	writeJSON(w, http.StatusOK, mgr.Stats())
}

func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request) {
	mgr := s.Manager()
	if mgr == nil {
		writeError(w, http.StatusNotImplemented, errors.New("server started without a network"))
		return
	}
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad session id: %w", err))
		return
	}
	if err := mgr.Release(dynamic.SessionID(id)); err != nil {
		status := http.StatusNotFound
		if !errors.Is(err, dynamic.ErrUnknownSession) {
			status = http.StatusInternalServerError
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "released"})
}
