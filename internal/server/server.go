// Package server exposes the solver suite over HTTP, the way an SDN
// controller would consume it (the paper's setting is centralized
// computation in an SDN control plane). It offers stateless solving
// and rendering endpoints that carry the full instance in the request,
// plus a stateful session API backed by the dynamic manager on the
// network the server was started with.
//
//	GET    /healthz               liveness probe
//	POST   /v1/solve              {instance, algorithm?, seed?} -> embedding + costs
//	POST   /v1/validate           {instance, embedding} -> verdict + replay
//	POST   /v1/render             {instance, algorithm?} -> image/svg+xml
//	POST   /v1/sessions           task -> admitted session (server network)
//	GET    /v1/sessions           manager statistics
//	DELETE /v1/sessions/{id}      release a session
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"

	"sftree/internal/baseline"
	"sftree/internal/core"
	"sftree/internal/dynamic"
	"sftree/internal/exact"
	"sftree/internal/nfv"
	"sftree/internal/viz"
)

// MaxBodyBytes caps request bodies.
const MaxBodyBytes = 16 << 20

// Server is the HTTP facade. Create it with New; it implements
// http.Handler.
type Server struct {
	mux *http.ServeMux
	mgr *dynamic.Manager
	net *nfv.Network
}

// New builds a server. net backs the stateful session API and may be
// nil, in which case only the stateless endpoints are served.
func New(net *nfv.Network, opts core.Options) *Server {
	s := &Server{mux: http.NewServeMux(), net: net}
	if net != nil {
		s.mgr = dynamic.NewManager(net, opts)
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("POST /v1/validate", s.handleValidate)
	s.mux.HandleFunc("POST /v1/render", s.handleRender)
	s.mux.HandleFunc("POST /v1/sessions", s.handleAdmit)
	s.mux.HandleFunc("GET /v1/sessions", s.handleSessionStats)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleRelease)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, MaxBodyBytes)
	s.mux.ServeHTTP(w, r)
}

var _ http.Handler = (*Server)(nil)

// SolveRequest is the body of POST /v1/solve and /v1/render.
type SolveRequest struct {
	Instance  nfv.InstanceDoc `json:"instance"`
	Algorithm string          `json:"algorithm,omitempty"` // msa (default), msa1, sca, rsa, bks
	Seed      int64           `json:"seed,omitempty"`      // rsa only
}

// SolveResponse is the body of a successful solve.
type SolveResponse struct {
	Algorithm string            `json:"algorithm"`
	Embedding *nfv.Embedding    `json:"embedding"`
	Cost      nfv.CostBreakdown `json:"cost"`
	Stage1    float64           `json:"stage1_cost"`
	Moves     int               `json:"moves_accepted"`
}

// ValidateRequest is the body of POST /v1/validate.
type ValidateRequest struct {
	Instance  nfv.InstanceDoc `json:"instance"`
	Embedding *nfv.Embedding  `json:"embedding"`
}

// ValidateResponse reports the verdict of POST /v1/validate.
type ValidateResponse struct {
	Valid     bool              `json:"valid"`
	Reason    string            `json:"reason,omitempty"`
	Cost      nfv.CostBreakdown `json:"cost"`
	Delivered int               `json:"delivered"`
}

// AdmitResponse is the body of a successful admission.
type AdmitResponse struct {
	ID   dynamic.SessionID `json:"id"`
	Cost float64           `json:"cost"`
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v) // headers are sent; nothing left to do on error
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// runAlgorithm dispatches one stateless solve.
func runAlgorithm(req *SolveRequest) (*core.Result, error) {
	net, task := req.Instance.Network, req.Instance.Task
	if net == nil {
		return nil, errors.New("request carries no network")
	}
	switch req.Algorithm {
	case "", "msa":
		return core.Solve(net, task, core.Options{})
	case "msa1":
		return core.SolveStageOne(net, task, core.Options{})
	case "sca":
		return baseline.SCA(net, task, core.Options{})
	case "rsa":
		return baseline.RSA(net, task, rand.New(rand.NewSource(req.Seed)), core.Options{})
	case "onenode":
		return baseline.OneNode(net, task, core.Options{})
	case "bks":
		res, err := exact.BestKnown(net, task)
		if err != nil {
			return nil, err
		}
		return res.Result, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", req.Algorithm)
	}
}

func decodeBody[T any](w http.ResponseWriter, r *http.Request, dst *T) bool {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return false
	}
	return true
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	if !decodeBody(w, r, &req) {
		return
	}
	res, err := runAlgorithm(&req)
	if err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, nfv.ErrInvalidTask) {
			status = http.StatusBadRequest
		}
		writeError(w, status, err)
		return
	}
	algo := req.Algorithm
	if algo == "" {
		algo = "msa"
	}
	writeJSON(w, http.StatusOK, SolveResponse{
		Algorithm: algo,
		Embedding: res.Embedding,
		Cost:      req.Instance.Network.Cost(res.Embedding),
		Stage1:    res.Stage1Cost,
		Moves:     res.MovesAccepted,
	})
}

func (s *Server) handleValidate(w http.ResponseWriter, r *http.Request) {
	var req ValidateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Instance.Network == nil || req.Embedding == nil {
		writeError(w, http.StatusBadRequest, errors.New("need both instance and embedding"))
		return
	}
	resp := ValidateResponse{Valid: true}
	if err := req.Instance.Network.Validate(req.Embedding); err != nil {
		resp.Valid = false
		resp.Reason = err.Error()
	} else {
		resp.Cost = req.Instance.Network.Cost(req.Embedding)
		resp.Delivered = len(req.Embedding.Task.Destinations)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleRender(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	if !decodeBody(w, r, &req) {
		return
	}
	res, err := runAlgorithm(&req)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	blob, err := viz.RenderSVG(req.Instance.Network, res.Embedding, viz.Options{Title: "sftserve"})
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(blob)
}

func (s *Server) handleAdmit(w http.ResponseWriter, r *http.Request) {
	if s.mgr == nil {
		writeError(w, http.StatusNotImplemented, errors.New("server started without a network"))
		return
	}
	var task nfv.Task
	if !decodeBody(w, r, &task) {
		return
	}
	sess, err := s.mgr.Admit(task)
	if err != nil {
		status := http.StatusConflict
		if errors.Is(err, nfv.ErrInvalidTask) {
			status = http.StatusBadRequest
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusCreated, AdmitResponse{ID: sess.ID, Cost: sess.Result.FinalCost})
}

func (s *Server) handleSessionStats(w http.ResponseWriter, _ *http.Request) {
	if s.mgr == nil {
		writeError(w, http.StatusNotImplemented, errors.New("server started without a network"))
		return
	}
	writeJSON(w, http.StatusOK, s.mgr.Stats())
}

func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request) {
	if s.mgr == nil {
		writeError(w, http.StatusNotImplemented, errors.New("server started without a network"))
		return
	}
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad session id: %w", err))
		return
	}
	if err := s.mgr.Release(dynamic.SessionID(id)); err != nil {
		status := http.StatusNotFound
		if !errors.Is(err, dynamic.ErrUnknownSession) {
			status = http.StatusInternalServerError
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "released"})
}
