package server

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"sftree/internal/core"
	"sftree/internal/netgen"
	"sftree/internal/nfv"
)

// TestSolveTimeoutMSReturnsValidEmbedding: a 1ms deadline on a sizable
// instance must still return a *valid* embedding promptly — the solver
// has anytime semantics — with the early-stop flag surfaced.
func TestSolveTimeoutMSReturnsValidEmbedding(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	net, err := netgen.Generate(netgen.PaperConfig(60, 2), rng)
	if err != nil {
		t.Fatal(err)
	}
	task, err := netgen.GenerateTask(net, rng, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, false)
	doc := nfv.InstanceDoc{Network: net, Task: task}

	start := time.Now()
	resp := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Instance: doc, TimeoutMS: 1})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline ignored: solve took %v", elapsed)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Embedding == nil {
		t.Fatal("no embedding under deadline")
	}
	if err := net.Validate(out.Embedding); err != nil {
		t.Fatalf("deadline-stopped embedding invalid: %v", err)
	}
	// With 1ms against a 60-node instance the solver cannot finish its
	// optimization sweep; it must say so.
	if !out.EarlyStop {
		t.Log("solver finished within 1ms; early_stop unset (machine unusually fast)")
	}
}

// TestServerSolveTimeoutCeiling: the server-wide ceiling applies even
// when the request asks for more (or nothing).
func TestServerSolveTimeoutCeiling(t *testing.T) {
	srv := NewWith(nil, core.Options{}, Config{SolveTimeout: time.Millisecond})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	rng := rand.New(rand.NewSource(22))
	net, err := netgen.Generate(netgen.PaperConfig(60, 2), rng)
	if err != nil {
		t.Fatal(err)
	}
	task, err := netgen.GenerateTask(net, rng, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Ask for 60s: the 1ms server ceiling must win.
	start := time.Now()
	resp := postJSON(t, ts.URL+"/v1/solve", SolveRequest{
		Instance:  nfv.InstanceDoc{Network: net, Task: task},
		TimeoutMS: 60_000,
	})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("server ceiling ignored: solve took %v", elapsed)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Embedding == nil {
		t.Fatal("no embedding under ceiling")
	}
	if err := net.Validate(out.Embedding); err != nil {
		t.Fatalf("embedding invalid: %v", err)
	}
}

// TestAdmitTimeoutQueryParam: admissions accept ?timeout_ms= and reject
// garbage values.
func TestAdmitTimeoutQueryParam(t *testing.T) {
	ts := newTestServer(t, true)
	task := nfv.Task{Source: 0, Destinations: []int{5, 9}, Chain: nfv.SFC{0, 1}}
	resp := postJSON(t, ts.URL+"/v1/sessions?timeout_ms=500", task)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("admit with timeout: status %d", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/v1/sessions?timeout_ms=banana", task)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad timeout accepted: status %d", resp.StatusCode)
	}
}
