package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sftree/internal/core"
	"sftree/internal/netgen"
	"sftree/internal/nfv"
	"sftree/internal/obs"
)

func testInstance(t *testing.T) nfv.InstanceDoc {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	net, err := netgen.Generate(netgen.PaperConfig(20, 2), rng)
	if err != nil {
		t.Fatal(err)
	}
	task, err := netgen.GenerateTask(net, rng, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	return nfv.InstanceDoc{Network: net, Task: task}
}

func newTestServer(t *testing.T, withNet bool) *httptest.Server {
	t.Helper()
	var net *nfv.Network
	if withNet {
		rng := rand.New(rand.NewSource(10))
		var err error
		net, err = netgen.Generate(netgen.PaperConfig(25, 2), rng)
		if err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(New(net, core.Options{}))
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	blob, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t, false)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestSolveEndpointAlgorithms(t *testing.T) {
	ts := newTestServer(t, false)
	doc := testInstance(t)
	for _, algo := range []string{"", "msa", "msa1", "sca", "rsa", "onenode", "bks"} {
		t.Run("algo="+algo, func(t *testing.T) {
			resp := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Instance: doc, Algorithm: algo})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status = %d", resp.StatusCode)
			}
			var out SolveResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
			if out.Embedding == nil || out.Cost.Total <= 0 {
				t.Fatalf("response = %+v", out)
			}
			// The returned embedding must validate on our local copy.
			if err := doc.Network.Validate(out.Embedding); err != nil {
				t.Fatalf("returned embedding invalid: %v", err)
			}
		})
	}
}

func TestSolveEndpointErrors(t *testing.T) {
	ts := newTestServer(t, false)
	doc := testInstance(t)

	resp := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Instance: doc, Algorithm: "nope"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("unknown algorithm: status %d", resp.StatusCode)
	}

	bad := doc
	bad.Task.Chain = nil
	resp = postJSON(t, ts.URL+"/v1/solve", SolveRequest{Instance: bad})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid task: status %d", resp.StatusCode)
	}

	r, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader("{garbage"))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body: status %d", r.StatusCode)
	}
}

func TestValidateEndpoint(t *testing.T) {
	ts := newTestServer(t, false)
	doc := testInstance(t)
	res, err := core.Solve(doc.Network, doc.Task, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	resp := postJSON(t, ts.URL+"/v1/validate", ValidateRequest{Instance: doc, Embedding: res.Embedding})
	var out ValidateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.Valid || out.Delivered != 3 {
		t.Fatalf("verdict = %+v", out)
	}

	// Corrupt the embedding: must be reported invalid with a reason.
	broken := res.Embedding.Clone()
	broken.Walks = broken.Walks[:1]
	resp = postJSON(t, ts.URL+"/v1/validate", ValidateRequest{Instance: doc, Embedding: broken})
	out = ValidateResponse{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Valid || out.Reason == "" {
		t.Fatalf("verdict = %+v", out)
	}
}

func TestRenderEndpoint(t *testing.T) {
	ts := newTestServer(t, false)
	doc := testInstance(t)
	resp := postJSON(t, ts.URL+"/v1/render", SolveRequest{Instance: doc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "image/svg+xml" {
		t.Errorf("content type = %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "<svg") {
		t.Errorf("body is not SVG: %.40s", buf.String())
	}
}

func TestSessionLifecycleOverHTTP(t *testing.T) {
	ts := newTestServer(t, true)
	task := nfv.Task{Source: 0, Destinations: []int{5, 9}, Chain: nfv.SFC{0, 1}}

	resp := postJSON(t, ts.URL+"/v1/sessions", task)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("admit status = %d", resp.StatusCode)
	}
	var admitted AdmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&admitted); err != nil {
		t.Fatal(err)
	}
	if admitted.Cost <= 0 {
		t.Fatalf("admitted = %+v", admitted)
	}

	statResp, err := http.Get(ts.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	defer statResp.Body.Close()
	var stats struct {
		Admitted int `json:"admitted"`
		Active   int `json:"active"`
	}
	if err := json.NewDecoder(statResp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Admitted != 1 || stats.Active != 1 {
		t.Fatalf("stats = %+v", stats)
	}

	req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/sessions/%d", ts.URL, admitted.ID), nil)
	if err != nil {
		t.Fatal(err)
	}
	delResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer delResp.Body.Close()
	if delResp.StatusCode != http.StatusOK {
		t.Fatalf("release status = %d", delResp.StatusCode)
	}

	// Releasing again: 404.
	again, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Body.Close()
	if again.StatusCode != http.StatusNotFound {
		t.Errorf("double release status = %d", again.StatusCode)
	}

	// Bad id: 400.
	badReq, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/abc", nil)
	if err != nil {
		t.Fatal(err)
	}
	badResp, err := http.DefaultClient.Do(badReq)
	if err != nil {
		t.Fatal(err)
	}
	defer badResp.Body.Close()
	if badResp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad id status = %d", badResp.StatusCode)
	}
}

func TestReadyz(t *testing.T) {
	for _, withNet := range []bool{false, true} {
		ts := newTestServer(t, withNet)
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("withNet=%v: status = %d", withNet, resp.StatusCode)
		}
		var body struct {
			Status      string `json:"status"`
			SessionsAPI bool   `json:"sessions_api"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		if body.Status != "ready" || body.SessionsAPI != withNet {
			t.Errorf("withNet=%v: body = %+v", withNet, body)
		}
	}
}

func TestErrorEnvelopes(t *testing.T) {
	ts := newTestServer(t, false)

	// Malformed body: 400 with {"error": ...}.
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	assertErrorEnvelope(t, resp, http.StatusBadRequest)

	// Oversized body: 413 with {"error": ...}.
	huge := strings.NewReader(`{"instance":{"network":{"pad":"` + strings.Repeat("x", MaxBodyBytes+1) + `"}}}`)
	resp, err = http.Post(ts.URL+"/v1/solve", "application/json", huge)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	assertErrorEnvelope(t, resp, http.StatusRequestEntityTooLarge)

	// Unknown route: JSON 404, not net/http's text page.
	resp, err = http.Get(ts.URL + "/no/such/route")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	assertErrorEnvelope(t, resp, http.StatusNotFound)
}

func assertErrorEnvelope(t *testing.T, resp *http.Response, wantStatus int) {
	t.Helper()
	if resp.StatusCode != wantStatus {
		t.Errorf("status = %d, want %d", resp.StatusCode, wantStatus)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q, want application/json", ct)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("body is not a JSON envelope: %v", err)
	}
	if body.Error == "" {
		t.Error("envelope has empty error message")
	}
}

// TestSolveFeedsMetrics is the acceptance check: one POST /v1/solve
// must increment the per-route latency histogram AND record solver
// phase timings through the attached observer.
func TestSolveFeedsMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	srv := NewWith(nil, core.Options{}, Config{Registry: reg})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	if srv.Registry() != reg {
		t.Fatal("Registry() does not return the wired registry")
	}

	resp := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Instance: testInstance(t)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status = %d", resp.StatusCode)
	}

	snap := reg.Snapshot()
	if got := snap.Histograms["http_request_ms|POST /v1/solve"].Count; got != 1 {
		t.Errorf("route histogram count = %d, want 1", got)
	}
	if got := snap.Counters["http_responses_total|POST /v1/solve|2xx"]; got != 1 {
		t.Errorf("2xx counter = %d, want 1", got)
	}
	if got := snap.Counters["solver_solves_total"]; got != 1 {
		t.Errorf("solver_solves_total = %d, want 1", got)
	}
	for _, h := range []string{"solver_stage1_ms", "solver_stage2_ms"} {
		if got := snap.Histograms[h].Count; got < 1 {
			t.Errorf("%s count = %d, want >= 1", h, got)
		}
	}

	// The /metrics endpoint serves the same snapshot as JSON.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", mresp.StatusCode)
	}
	var served obs.Snapshot
	if err := json.NewDecoder(mresp.Body).Decode(&served); err != nil {
		t.Fatal(err)
	}
	if served.Counters["solver_solves_total"] != 1 {
		t.Errorf("/metrics solver_solves_total = %d", served.Counters["solver_solves_total"])
	}
}

// TestSessionMetrics: admissions and releases show up in the manager's
// instrumented counters and gauges.
func TestSessionMetrics(t *testing.T) {
	ts := newTestServer(t, true)
	task := nfv.Task{Source: 0, Destinations: []int{5, 9}, Chain: nfv.SFC{0, 1}}

	resp := postJSON(t, ts.URL+"/v1/sessions", task)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("admit status = %d", resp.StatusCode)
	}
	var admitted AdmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&admitted); err != nil {
		t.Fatal(err)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(mresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["sessions_admitted_total"] != 1 || snap.Gauges["sessions_live"] != 1 {
		t.Errorf("admit metrics: admitted=%d live=%d",
			snap.Counters["sessions_admitted_total"], snap.Gauges["sessions_live"])
	}
	if snap.Histograms["session_solve_ms"].Count != 1 {
		t.Errorf("session_solve_ms count = %d", snap.Histograms["session_solve_ms"].Count)
	}

	req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/sessions/%d", ts.URL, admitted.ID), nil)
	if err != nil {
		t.Fatal(err)
	}
	delResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()

	mresp2, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp2.Body.Close()
	snap = obs.Snapshot{}
	if err := json.NewDecoder(mresp2.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["sessions_released_total"] != 1 || snap.Gauges["sessions_live"] != 0 {
		t.Errorf("release metrics: released=%d live=%d",
			snap.Counters["sessions_released_total"], snap.Gauges["sessions_live"])
	}
}

func TestSessionsWithoutNetwork(t *testing.T) {
	ts := newTestServer(t, false)
	resp := postJSON(t, ts.URL+"/v1/sessions", nfv.Task{Source: 0, Destinations: []int{1}, Chain: nfv.SFC{0}})
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("status = %d, want 501", resp.StatusCode)
	}
	statResp, err := http.Get(ts.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	defer statResp.Body.Close()
	if statResp.StatusCode != http.StatusNotImplemented {
		t.Errorf("stats status = %d, want 501", statResp.StatusCode)
	}
}
