package server

import (
	"context"
	"errors"
	"strings"
	"testing"

	"sftree/internal/nfv"
)

func TestClientAgainstServer(t *testing.T) {
	ts := newTestServer(t, true)
	c := NewClient(ts.URL, nil)
	ctx := context.Background()

	if err := c.Health(ctx); err != nil {
		t.Fatalf("health: %v", err)
	}

	doc := testInstance(t)
	solved, err := c.Solve(ctx, SolveRequest{Instance: doc})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if solved.Cost.Total <= 0 || solved.Embedding == nil {
		t.Fatalf("solve response: %+v", solved)
	}

	verdict, err := c.Validate(ctx, ValidateRequest{Instance: doc, Embedding: solved.Embedding})
	if err != nil {
		t.Fatalf("validate: %v", err)
	}
	if !verdict.Valid {
		t.Fatalf("verdict: %+v", verdict)
	}

	svg, err := c.Render(ctx, SolveRequest{Instance: doc})
	if err != nil {
		t.Fatalf("render: %v", err)
	}
	if !strings.HasPrefix(string(svg), "<svg") {
		t.Fatalf("render returned %.20s", svg)
	}

	sess, err := c.Admit(ctx, nfv.Task{Source: 0, Destinations: []int{5, 9}, Chain: nfv.SFC{0, 1}})
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	stats, err := c.SessionStats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if stats.Active != 1 {
		t.Fatalf("stats: %+v", stats)
	}
	if err := c.Release(ctx, sess.ID); err != nil {
		t.Fatalf("release: %v", err)
	}
	if err := c.Release(ctx, sess.ID); !IsNotFound(err) {
		t.Fatalf("double release: %v", err)
	}
}

func TestClientErrorMapping(t *testing.T) {
	ts := newTestServer(t, false)
	c := NewClient(ts.URL, nil)
	ctx := context.Background()

	doc := testInstance(t)
	_, err := c.Solve(ctx, SolveRequest{Instance: doc, Algorithm: "bogus"})
	var apiErr *APIError
	if err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("err = %v", err)
	}
	if !errors.As(err, &apiErr) || apiErr.Status != 422 {
		t.Fatalf("err = %#v", err)
	}

	// Sessions unavailable on a stateless server.
	if _, err := c.Admit(ctx, nfv.Task{Source: 0, Destinations: []int{1}, Chain: nfv.SFC{0}}); err == nil {
		t.Fatal("admit on stateless server succeeded")
	}
}

func TestClientContextCancellation(t *testing.T) {
	ts := newTestServer(t, false)
	c := NewClient(ts.URL, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.Health(ctx); err == nil {
		t.Fatal("cancelled context succeeded")
	}
}
