package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"sftree/internal/obs"
)

// getTraces pulls and decodes /debug/traces.
func getTraces(t *testing.T, base string) []obs.Trace {
	t.Helper()
	resp, err := http.Get(base + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces status %d", resp.StatusCode)
	}
	var doc struct {
		Traces []obs.Trace `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc.Traces
}

// TestRequestIDPropagatesToTrace is the end-to-end acceptance path:
// the X-Request-ID a client sends on an admission must come back out
// of /debug/traces attached to the solver span tree that admission
// produced.
func TestRequestIDPropagatesToTrace(t *testing.T) {
	ts := newTestServer(t, true)
	doc := testInstance(t)

	// Admission with a caller-chosen request ID.
	blob, err := json.Marshal(doc.Task)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/sessions", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.RequestIDHeader, "trace-e2e-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("admit status %d", resp.StatusCode)
	}

	var admit *obs.Trace
	for _, tr := range getTraces(t, ts.URL) {
		if tr.Op == "admit" && tr.RequestID == "trace-e2e-42" {
			admit = &tr
			break
		}
	}
	if admit == nil {
		t.Fatal("no admit trace with the caller's request ID")
	}
	if len(admit.Spans) == 0 {
		t.Error("admit trace carries no solver spans")
	}
	if admit.DurationNs <= 0 {
		t.Error("admit trace has no duration")
	}
}

// TestStatelessSolveTraced: /v1/solve and /v1/render runs land in the
// ring too, with server-generated request IDs when the caller sent
// none.
func TestStatelessSolveTraced(t *testing.T) {
	ts := newTestServer(t, false)
	doc := testInstance(t)
	resp := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Instance: doc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d", resp.StatusCode)
	}
	traces := getTraces(t, ts.URL)
	if len(traces) == 0 {
		t.Fatal("no traces after a solve")
	}
	tr := traces[len(traces)-1]
	if tr.Op != "solve" {
		t.Errorf("trace op = %q, want solve", tr.Op)
	}
	if tr.RequestID == "" {
		t.Error("solve trace lacks the generated request ID")
	}
	if tr.Session != -1 {
		t.Errorf("stateless solve trace session = %d, want -1", tr.Session)
	}
}

// TestMetricsExposesCacheFloats: the /metrics snapshot must carry the
// cache hit-rate and pool reuse callback gauges.
func TestMetricsExposesCacheFloats(t *testing.T) {
	ts := newTestServer(t, true)
	doc := testInstance(t)
	if resp := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Instance: doc}); resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"metric_cache_hit_rate", "apsp_cache_hit_rate",
		"sp_pool_reuse_rate", "journal_pool_reuse_rate",
	} {
		if _, ok := snap.Floats[name]; !ok {
			t.Errorf("/metrics floats missing %s", name)
		}
	}
	// The solve above called Network.Metric at least once, so the
	// metric-cache counters must be live. (Journal/scratch pool gets
	// stay zero on instances too small to propose moves; their exact
	// accounting is covered in internal/obs.)
	if snap.Floats["metric_cache_hits"]+snap.Floats["metric_cache_misses"] <= 0 {
		t.Error("metric cache counters not live after a solve")
	}
}
