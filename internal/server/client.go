package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"sftree/internal/dynamic"
	"sftree/internal/nfv"
)

// Client is a typed HTTP client for the sftserve API, usable by other
// controllers or test harnesses.
type Client struct {
	base string
	http *http.Client
}

// NewClient targets a server base URL ("http://host:port"). httpClient
// may be nil (http.DefaultClient).
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: base, http: httpClient}
}

// APIError carries the server's error body and HTTP status.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server: %d: %s", e.Status, e.Message)
}

// do round-trips a JSON request and decodes a JSON response into out
// (skipped when out is nil). Non-2xx responses become *APIError.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		blob, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encode: %w", err)
		}
		body = bytes.NewReader(blob)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("client: request: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var eb errorBody
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&eb) == nil && eb.Error != "" {
			msg = eb.Error
		}
		return &APIError{Status: resp.StatusCode, Message: msg}
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode: %w", err)
	}
	return nil
}

// Health checks the liveness endpoint.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Solve submits a stateless solve.
func (c *Client) Solve(ctx context.Context, req SolveRequest) (*SolveResponse, error) {
	var out SolveResponse
	if err := c.do(ctx, http.MethodPost, "/v1/solve", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Validate submits an embedding for server-side validation.
func (c *Client) Validate(ctx context.Context, req ValidateRequest) (*ValidateResponse, error) {
	var out ValidateResponse
	if err := c.do(ctx, http.MethodPost, "/v1/validate", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Render solves and returns the SVG bytes.
func (c *Client) Render(ctx context.Context, req SolveRequest) ([]byte, error) {
	blob, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: encode: %w", err)
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/render", bytes.NewReader(blob))
	if err != nil {
		return nil, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(httpReq)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&eb) == nil && eb.Error != "" {
			msg = eb.Error
		}
		return nil, &APIError{Status: resp.StatusCode, Message: msg}
	}
	return io.ReadAll(resp.Body)
}

// Admit creates a session on the server's network.
func (c *Client) Admit(ctx context.Context, task nfv.Task) (*AdmitResponse, error) {
	var out AdmitResponse
	if err := c.do(ctx, http.MethodPost, "/v1/sessions", task, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Release tears a session down.
func (c *Client) Release(ctx context.Context, id dynamic.SessionID) error {
	return c.do(ctx, http.MethodDelete, fmt.Sprintf("/v1/sessions/%d", id), nil, nil)
}

// SessionStats fetches the manager counters.
func (c *Client) SessionStats(ctx context.Context) (*dynamic.Stats, error) {
	var out dynamic.Stats
	if err := c.do(ctx, http.MethodGet, "/v1/sessions", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// IsNotFound reports whether err is an APIError with status 404.
func IsNotFound(err error) bool {
	var apiErr *APIError
	return errors.As(err, &apiErr) && apiErr.Status == http.StatusNotFound
}
