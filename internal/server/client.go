package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"sftree/internal/dynamic"
	"sftree/internal/nfv"
)

// Client is a typed HTTP client for the sftserve API, usable by other
// controllers or test harnesses.
type Client struct {
	base  string
	http  *http.Client
	retry RetryPolicy
}

// NewClient targets a server base URL ("http://host:port"). httpClient
// may be nil (http.DefaultClient). The client does not retry unless
// configured with WithRetry.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: base, http: httpClient}
}

// RetryPolicy bounds the client's automatic retries. Only idempotent
// requests (GET, DELETE) are retried, and only on connection errors or
// 5xx responses: a failed POST may have reached the server, so
// repeating it could double-solve or double-admit.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (1 = no retries).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (doubled per attempt,
	// jittered to half-to-full of the computed delay).
	BaseDelay time.Duration
	// MaxDelay caps a single backoff sleep. A server Retry-After
	// header overrides the computed delay but is still capped here.
	MaxDelay time.Duration
}

// DefaultRetryPolicy retries up to 4 attempts with 50ms base backoff
// capped at 2s.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second}
}

// WithRetry returns a copy of the client that retries under p.
func (c *Client) WithRetry(p RetryPolicy) *Client {
	cc := *c
	cc.retry = p
	return &cc
}

// retryable reports whether a failed attempt may be repeated: the
// method must be idempotent and the failure transient (connection
// error, i.e. resp == nil, or a 5xx status).
func retryable(method string, resp *http.Response) bool {
	switch method {
	case http.MethodGet, http.MethodHead, http.MethodDelete, http.MethodPut, http.MethodOptions:
	default:
		return false
	}
	return resp == nil || resp.StatusCode >= 500
}

// backoff computes the sleep before attempt n (1-based count of
// failures so far), honoring a Retry-After header when the server sent
// one. The exponential delay is jittered across [delay/2, delay].
func (p RetryPolicy) backoff(n int, resp *http.Response) time.Duration {
	if resp != nil {
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
				d := time.Duration(secs) * time.Second
				if p.MaxDelay > 0 && d > p.MaxDelay {
					d = p.MaxDelay
				}
				return d
			}
		}
	}
	d := p.BaseDelay << (n - 1)
	if d <= 0 {
		return 0
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// sleep waits d or until ctx is done, whichever comes first.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// APIError carries the server's error body and HTTP status.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server: %d: %s", e.Status, e.Message)
}

// do round-trips a JSON request and decodes a JSON response into out
// (skipped when out is nil). Non-2xx responses become *APIError.
// Idempotent requests are retried under the client's RetryPolicy on
// connection errors and 5xx responses, with jittered exponential
// backoff, honoring Retry-After and the caller's context.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var blob []byte
	if in != nil {
		var err error
		if blob, err = json.Marshal(in); err != nil {
			return fmt.Errorf("client: encode: %w", err)
		}
	}
	attempts := c.retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for attempt := 1; ; attempt++ {
		resp, err := c.attempt(ctx, method, path, blob, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if attempt >= attempts || !retryable(method, resp) {
			return lastErr
		}
		if err := sleep(ctx, c.retry.backoff(attempt, resp)); err != nil {
			return fmt.Errorf("client: retry aborted: %w (last error: %v)", err, lastErr)
		}
	}
}

// attempt performs one round-trip. The returned response is non-nil
// only on HTTP-level errors (for retry classification); its body is
// already closed.
func (c *Client) attempt(ctx context.Context, method, path string, blob []byte, out any) (*http.Response, error) {
	var body io.Reader
	if blob != nil {
		body = bytes.NewReader(blob)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return nil, fmt.Errorf("client: request: %w", err)
	}
	if blob != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var eb errorBody
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&eb) == nil && eb.Error != "" {
			msg = eb.Error
		}
		return resp, &APIError{Status: resp.StatusCode, Message: msg}
	}
	if out == nil {
		return nil, nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return nil, fmt.Errorf("client: decode: %w", err)
	}
	return nil, nil
}

// Health checks the liveness endpoint.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Solve submits a stateless solve.
func (c *Client) Solve(ctx context.Context, req SolveRequest) (*SolveResponse, error) {
	var out SolveResponse
	if err := c.do(ctx, http.MethodPost, "/v1/solve", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Validate submits an embedding for server-side validation.
func (c *Client) Validate(ctx context.Context, req ValidateRequest) (*ValidateResponse, error) {
	var out ValidateResponse
	if err := c.do(ctx, http.MethodPost, "/v1/validate", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Render solves and returns the SVG bytes.
func (c *Client) Render(ctx context.Context, req SolveRequest) ([]byte, error) {
	blob, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: encode: %w", err)
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/render", bytes.NewReader(blob))
	if err != nil {
		return nil, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(httpReq)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&eb) == nil && eb.Error != "" {
			msg = eb.Error
		}
		return nil, &APIError{Status: resp.StatusCode, Message: msg}
	}
	return io.ReadAll(resp.Body)
}

// Admit creates a session on the server's network.
func (c *Client) Admit(ctx context.Context, task nfv.Task) (*AdmitResponse, error) {
	var out AdmitResponse
	if err := c.do(ctx, http.MethodPost, "/v1/sessions", task, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Release tears a session down.
func (c *Client) Release(ctx context.Context, id dynamic.SessionID) error {
	return c.do(ctx, http.MethodDelete, fmt.Sprintf("/v1/sessions/%d", id), nil, nil)
}

// SessionStats fetches the manager counters.
func (c *Client) SessionStats(ctx context.Context) (*dynamic.Stats, error) {
	var out dynamic.Stats
	if err := c.do(ctx, http.MethodGet, "/v1/sessions", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// IsNotFound reports whether err is an APIError with status 404.
func IsNotFound(err error) bool {
	var apiErr *APIError
	return errors.As(err, &apiErr) && apiErr.Status == http.StatusNotFound
}
