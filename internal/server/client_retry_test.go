package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"sftree/internal/nfv"
)

// flakyHandler fails the first n requests with 500, then succeeds.
type flakyHandler struct {
	fails int32
	hits  int32
}

func (h *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := atomic.AddInt32(&h.hits, 1)
	if n <= atomic.LoadInt32(&h.fails) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = w.Write([]byte(`{"error":"transient"}`))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write([]byte(`{"status":"ok"}`))
}

func fastRetry(attempts int) RetryPolicy {
	return RetryPolicy{MaxAttempts: attempts, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
}

func TestClientRetriesIdempotent5xx(t *testing.T) {
	h := &flakyHandler{fails: 2}
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := NewClient(ts.URL, nil).WithRetry(fastRetry(4))
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("health after retries: %v", err)
	}
	if got := atomic.LoadInt32(&h.hits); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (2 failures + success)", got)
	}
}

func TestClientGivesUpAfterMaxAttempts(t *testing.T) {
	h := &flakyHandler{fails: 100}
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := NewClient(ts.URL, nil).WithRetry(fastRetry(3))
	err := c.Health(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusInternalServerError {
		t.Fatalf("err = %v, want APIError 500", err)
	}
	if got := atomic.LoadInt32(&h.hits); got != 3 {
		t.Fatalf("server saw %d requests, want exactly MaxAttempts=3", got)
	}
}

func TestClientNeverRetriesPOST(t *testing.T) {
	h := &flakyHandler{fails: 100}
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := NewClient(ts.URL, nil).WithRetry(fastRetry(5))
	_, err := c.Admit(context.Background(), nfv.Task{Source: 0, Destinations: []int{1}, Chain: nfv.SFC{0}})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want APIError", err)
	}
	if got := atomic.LoadInt32(&h.hits); got != 1 {
		t.Fatalf("POST retried: server saw %d requests, want 1", got)
	}
}

func TestClientNoPolicyNoRetry(t *testing.T) {
	h := &flakyHandler{fails: 1}
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := NewClient(ts.URL, nil)
	if err := c.Health(context.Background()); err == nil {
		t.Fatal("unconfigured client retried")
	}
	if got := atomic.LoadInt32(&h.hits); got != 1 {
		t.Fatalf("server saw %d requests, want 1", got)
	}
}

// flakyTransport fails the first n round-trips at the connection level.
type flakyTransport struct {
	fails int32
	calls int32
	inner http.RoundTripper
}

func (t *flakyTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if atomic.AddInt32(&t.calls, 1) <= atomic.LoadInt32(&t.fails) {
		return nil, errors.New("connection refused (simulated)")
	}
	return t.inner.RoundTrip(r)
}

func TestClientRetriesConnectionErrors(t *testing.T) {
	ts := httptest.NewServer(&flakyHandler{})
	defer ts.Close()
	tr := &flakyTransport{fails: 2, inner: http.DefaultTransport}
	c := NewClient(ts.URL, &http.Client{Transport: tr}).WithRetry(fastRetry(4))
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("health after connection errors: %v", err)
	}
	if got := atomic.LoadInt32(&tr.calls); got != 3 {
		t.Fatalf("%d round-trips, want 3", got)
	}
}

func TestClientHonorsRetryAfterAndContext(t *testing.T) {
	// The server always fails and demands a 5s pause; a 50ms caller
	// deadline must abort the backoff sleep promptly.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Retry-After", "5")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	// No MaxDelay cap: Retry-After's 5s would be honored in full.
	c := NewClient(ts.URL, nil).WithRetry(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := c.Health(ctx)
	if err == nil {
		t.Fatal("expected failure")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context deadline", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("backoff ignored context: slept %v", elapsed)
	}
}

func TestBackoffRespectsRetryAfterCap(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond}
	resp := &http.Response{Header: http.Header{"Retry-After": []string{"7"}}}
	if d := p.backoff(1, resp); d != 10*time.Millisecond {
		t.Fatalf("Retry-After not capped: %v", d)
	}
	// Exponential growth stays within [d/2, d] and under the cap.
	for n := 1; n <= 8; n++ {
		d := p.backoff(n, nil)
		if d < 0 || d > p.MaxDelay {
			t.Fatalf("attempt %d: backoff %v outside [0, %v]", n, d, p.MaxDelay)
		}
	}
}
