package server

import (
	"fmt"
	"net/http"
	"testing"

	"sftree/internal/nfv"
)

// TestSolveBodyValidation is the table-driven contract for malformed
// solve requests: every rejection must come back as a JSON error
// envelope with the right status, never a 500 or a hung solve.
func TestSolveBodyValidation(t *testing.T) {
	ts := newTestServer(t, false)
	good := testInstance(t)

	mutate := func(f func(doc *nfv.InstanceDoc)) nfv.InstanceDoc {
		doc := nfv.InstanceDoc{Network: good.Network, Task: good.Task}
		doc.Task.Destinations = append([]int(nil), good.Task.Destinations...)
		doc.Task.Chain = append(nfv.SFC(nil), good.Task.Chain...)
		f(&doc)
		return doc
	}

	cases := []struct {
		name       string
		req        SolveRequest
		wantStatus int
	}{
		{
			name:       "negative timeout_ms",
			req:        SolveRequest{Instance: good, TimeoutMS: -1},
			wantStatus: http.StatusBadRequest,
		},
		{
			name:       "hugely negative timeout_ms",
			req:        SolveRequest{Instance: good, TimeoutMS: -1 << 60},
			wantStatus: http.StatusBadRequest,
		},
		{
			name:       "overflowing timeout_ms",
			req:        SolveRequest{Instance: good, TimeoutMS: maxTimeoutMS + 1},
			wantStatus: http.StatusBadRequest,
		},
		{
			name: "zero destinations",
			req: SolveRequest{Instance: mutate(func(doc *nfv.InstanceDoc) {
				doc.Task.Destinations = nil
			})},
			wantStatus: http.StatusBadRequest,
		},
		{
			name: "unknown VNF in chain",
			req: SolveRequest{Instance: mutate(func(doc *nfv.InstanceDoc) {
				doc.Task.Chain = append(doc.Task.Chain, good.Network.CatalogSize()+5)
			})},
			wantStatus: http.StatusBadRequest,
		},
		{
			name: "destination out of range",
			req: SolveRequest{Instance: mutate(func(doc *nfv.InstanceDoc) {
				doc.Task.Destinations[0] = good.Network.NumNodes() + 1
			})},
			wantStatus: http.StatusBadRequest,
		},
		{
			name:       "unknown algorithm",
			req:        SolveRequest{Instance: good, Algorithm: "simulated-annealing"},
			wantStatus: http.StatusUnprocessableEntity,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postJSON(t, ts.URL+"/v1/solve", tc.req)
			assertErrorEnvelope(t, resp, tc.wantStatus)
		})
	}

	// The largest representable timeout must still solve (capped by the
	// server ceiling), proving the overflow guard rejects only what
	// solveContext cannot honor.
	resp := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Instance: good, TimeoutMS: maxTimeoutMS})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("max valid timeout_ms: status %d, want 200", resp.StatusCode)
	}
}

// TestAdmitTimeoutValidation covers the session API's query-parameter
// flavor of the same contract.
func TestAdmitTimeoutValidation(t *testing.T) {
	ts := newTestServer(t, true)
	task := nfv.Task{Source: 0, Destinations: []int{1, 2}, Chain: nfv.SFC{0}}
	for _, bad := range []string{"-5", "abc", fmt.Sprint(maxTimeoutMS + 1)} {
		t.Run("timeout_ms="+bad, func(t *testing.T) {
			resp := postJSON(t, ts.URL+"/v1/sessions?timeout_ms="+bad, task)
			assertErrorEnvelope(t, resp, http.StatusBadRequest)
		})
	}
	t.Run("zero destinations", func(t *testing.T) {
		resp := postJSON(t, ts.URL+"/v1/sessions",
			nfv.Task{Source: 0, Destinations: nil, Chain: nfv.SFC{0}})
		assertErrorEnvelope(t, resp, http.StatusBadRequest)
	})
	t.Run("unknown VNF", func(t *testing.T) {
		resp := postJSON(t, ts.URL+"/v1/sessions",
			nfv.Task{Source: 0, Destinations: []int{1}, Chain: nfv.SFC{99}})
		assertErrorEnvelope(t, resp, http.StatusBadRequest)
	})
}
