package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sftree/internal/core"
	"sftree/internal/graph"
	"sftree/internal/netgen"
	"sftree/internal/nfv"
)

// newQueuedServer boots a session server in queued-admission mode and
// returns the Server (for queue introspection), its test listener and
// a feasible task on its network.
func newQueuedServer(t *testing.T, cfg Config) (*Server, *httptest.Server, nfv.Task) {
	t.Helper()
	rng := rand.New(rand.NewSource(10))
	net, err := netgen.Generate(netgen.PaperConfig(25, 2), rng)
	if err != nil {
		t.Fatal(err)
	}
	task, err := netgen.GenerateTask(net, rng, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewWith(net, core.Options{}, cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if q := srv.Queue(); q != nil {
			_ = q.Close(ctx)
		}
	})
	return srv, ts, task
}

func TestQueuedAdmitSucceeds(t *testing.T) {
	srv, ts, task := newQueuedServer(t, Config{QueueDepth: 8, BatchWindow: 2 * time.Millisecond})
	resp := postJSON(t, ts.URL+"/v1/sessions", task)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var ar AdmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		t.Fatal(err)
	}
	if ar.SolveMS <= 0 {
		t.Errorf("solve_ms = %v, want > 0 on the queued path", ar.SolveMS)
	}
	if ar.WaitMS < 0 {
		t.Errorf("wait_ms = %v, want >= 0", ar.WaitMS)
	}
	if st := srv.Queue().Stats(); st.Admitted != 1 || st.Batches == 0 {
		t.Errorf("queue stats = %+v", st)
	}
}

// TestQueuedAdmitErrors is the table-driven contract for the enqueue
// endpoint's error surface: bad timeout_ms values stay 400 (validated
// before any enqueue), malformed tasks 400, infeasible tasks 409 —
// all wrapped in the JSON error envelope.
func TestQueuedAdmitErrors(t *testing.T) {
	_, ts, task := newQueuedServer(t, Config{QueueDepth: 8})
	blob, err := json.Marshal(task)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		query  string
		body   string
		status int
	}{
		{name: "negative timeout_ms", query: "?timeout_ms=-5", body: string(blob), status: http.StatusBadRequest},
		{name: "overflow timeout_ms", query: fmt.Sprintf("?timeout_ms=%d", int64(1)<<62), body: string(blob), status: http.StatusBadRequest},
		{name: "unparseable timeout_ms", query: "?timeout_ms=soon", body: string(blob), status: http.StatusBadRequest},
		{name: "malformed body", body: "{nope", status: http.StatusBadRequest},
		{name: "invalid task", body: `{"source":-1,"destinations":[2],"chain":[0]}`, status: http.StatusBadRequest},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/sessions"+tc.query, "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.status)
			}
			var envelope errorBody
			if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil || envelope.Error == "" {
				t.Fatalf("error envelope missing: decode err %v, body %+v", err, envelope)
			}
		})
	}
}

// TestQueuedAdmitRejection posts a well-formed task to a network with
// zero server capacity: the task passes validation, reaches the
// solver through the queue, and the rejection must surface as 409
// with the JSON error envelope, exactly like the inline path.
func TestQueuedAdmitRejection(t *testing.T) {
	g := graph.New(4)
	for v := 1; v < 4; v++ {
		g.MustAddEdge(v-1, v, 1)
	}
	net := nfv.NewNetwork(g, []nfv.VNF{{ID: 0, Name: "f0", Demand: 1}})
	for _, v := range []int{1, 2} {
		if err := net.SetServer(v, 0); err != nil { // servers exist, zero capacity
			t.Fatal(err)
		}
		if err := net.SetSetupCost(0, v, 1); err != nil {
			t.Fatal(err)
		}
	}
	srv := NewWith(net, core.Options{}, Config{QueueDepth: 8})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Queue().Close(ctx)
	})

	task := nfv.Task{Source: 0, Destinations: []int{3}, Chain: nfv.SFC{0}}
	resp := postJSON(t, ts.URL+"/v1/sessions", task)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status = %d, want 409", resp.StatusCode)
	}
	var envelope errorBody
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil || envelope.Error == "" {
		t.Fatalf("409 envelope missing: %v %+v", err, envelope)
	}
	if st := srv.Queue().Stats(); st.Rejected != 1 {
		t.Errorf("queue rejection not counted: %+v", st)
	}
}

// TestQueuedAdmitOverflow forces the bounded queue full and asserts
// the 429 envelope carries Retry-After.
func TestQueuedAdmitOverflow(t *testing.T) {
	srv, ts, task := newQueuedServer(t, Config{QueueDepth: 1, BatchWindow: time.Second})
	blob, err := json.Marshal(task)
	if err != nil {
		t.Fatal(err)
	}

	// Fill the single slot, then post again while it is still queued
	// (the batch window keeps the dispatcher lingering).
	first := make(chan *http.Response, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(string(blob)))
		if err == nil {
			first <- resp
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Queue().Stats().Depth == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(string(blob)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After")
	}
	var envelope errorBody
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil || envelope.Error == "" {
		t.Fatalf("error envelope missing: %v %+v", err, envelope)
	}
	if srv.Queue().Stats().Overflow == 0 {
		t.Error("overflow not counted")
	}

	// /readyz reports the saturated queue as degraded.
	rdy, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer rdy.Body.Close()
	var ready struct {
		Status    string `json:"status"`
		Saturated bool   `json:"queue_saturated"`
	}
	if err := json.NewDecoder(rdy.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	if ready.Status != "degraded" || !ready.Saturated {
		t.Errorf("readyz while saturated = %+v", ready)
	}

	if fr := <-first; fr != nil {
		fr.Body.Close()
	}
}

// TestQueuedAdmitExpires asks for a deadline far shorter than the
// batch window: the ticket must expire in-queue and answer 429 with
// Retry-After, never reaching a solver.
func TestQueuedAdmitExpires(t *testing.T) {
	srv, ts, task := newQueuedServer(t, Config{QueueDepth: 8, BatchWindow: 300 * time.Millisecond})
	blob, err := json.Marshal(task)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/sessions?timeout_ms=1", "application/json", strings.NewReader(string(blob)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if st := srv.Queue().Stats(); st.Expired == 0 {
		t.Errorf("expiry not counted: %+v", st)
	}
}

// TestQueuedAdmitDraining closes the queue (the shutdown sequence's
// queue-drain step) and asserts new admissions answer 503.
func TestQueuedAdmitDraining(t *testing.T) {
	srv, ts, task := newQueuedServer(t, Config{QueueDepth: 8})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Queue().Close(ctx); err != nil {
		t.Fatal(err)
	}
	resp := postJSON(t, ts.URL+"/v1/sessions", task)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	var envelope errorBody
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil || envelope.Error == "" {
		t.Fatalf("error envelope missing: %v %+v", err, envelope)
	}
}
