// Package viz renders networks and SFT embeddings as standalone SVG
// documents: the topology in grey, server nodes as squares, the
// multicast source and destinations highlighted, each chain stage's
// links in its own colour, and VNF instances labelled at their host
// nodes. It exists so examples and the sftembed CLI can produce
// figures akin to the paper's Figs. 1 and 6 for any instance.
package viz

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"sftree/internal/nfv"
)

// ErrNoCoords reports a network without node coordinates.
var ErrNoCoords = errors.New("viz: network has no coordinates")

// stageColors cycles per chain stage (stage 0 first).
var stageColors = []string{
	"#1b6ca8", "#c0392b", "#1e8449", "#8e44ad", "#d68910",
	"#148f77", "#884ea0", "#a04000", "#2e4053", "#7b241c",
}

const (
	canvas  = 720.0
	margin  = 40.0
	nodeR   = 7.0
	labelDy = -11.0
)

// Options tunes rendering.
type Options struct {
	// Names labels nodes (optional; indices used otherwise).
	Names []string
	// Title is drawn at the top when non-empty.
	Title string
}

// RenderSVG draws the network and, when emb is non-nil, its embedding.
func RenderSVG(net *nfv.Network, emb *nfv.Embedding, opts Options) ([]byte, error) {
	coords := net.Coords()
	if coords == nil {
		return nil, ErrNoCoords
	}
	// Fit coordinates into the canvas.
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range coords {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	spanX, spanY := maxX-minX, maxY-minY
	if spanX == 0 {
		spanX = 1
	}
	if spanY == 0 {
		spanY = 1
	}
	px := func(p nfv.Point) (float64, float64) {
		x := margin + (p.X-minX)/spanX*(canvas-2*margin)
		// SVG y grows downwards; geographic y grows upwards.
		y := canvas - margin - (p.Y-minY)/spanY*(canvas-2*margin)
		return x, y
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		canvas, canvas, canvas, canvas)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	if opts.Title != "" {
		fmt.Fprintf(&b, `<text x="%.0f" y="24" font-family="sans-serif" font-size="16">%s</text>`+"\n",
			margin, escape(opts.Title))
	}

	// Base topology.
	for _, e := range net.Graph().Edges() {
		x1, y1 := px(coords[e.U])
		x2, y2 := px(coords[e.V])
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#cccccc" stroke-width="1.5"/>`+"\n",
			x1, y1, x2, y2)
	}

	// Embedding stage paths (drawn over the topology).
	if emb != nil {
		type stageArc struct{ level, u, v int }
		drawn := map[stageArc]bool{}
		for _, w := range emb.Walks {
			for _, seg := range w {
				color := stageColors[seg.Level%len(stageColors)]
				for i := 1; i < len(seg.Path); i++ {
					key := stageArc{seg.Level, seg.Path[i-1], seg.Path[i]}
					if drawn[key] {
						continue
					}
					drawn[key] = true
					x1, y1 := px(coords[seg.Path[i-1]])
					x2, y2 := px(coords[seg.Path[i]])
					// Offset per stage so parallel stages stay visible.
					off := float64(seg.Level%3) * 1.8
					fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="3" stroke-opacity="0.75" transform="translate(%.1f,%.1f)"/>`+"\n",
						x1, y1, x2, y2, color, off, off)
				}
			}
		}
	}

	// Nodes.
	isDest := map[int]bool{}
	source := -1
	if emb != nil {
		source = emb.Task.Source
		for _, d := range emb.Task.Destinations {
			isDest[d] = true
		}
	}
	instanceAt := map[int][]string{}
	if emb != nil {
		for _, inst := range emb.NewInstances {
			instanceAt[inst.Node] = append(instanceAt[inst.Node],
				fmt.Sprintf("+f%d", inst.VNF))
		}
		for di := range emb.Task.Destinations {
			for lvl := 1; lvl <= emb.Task.K(); lvl++ {
				node := emb.ServingNode(di, lvl)
				tag := fmt.Sprintf("f%d", emb.Task.Chain[lvl-1])
				dup := false
				for _, t := range instanceAt[node] {
					if strings.TrimPrefix(t, "+") == tag {
						dup = true
						break
					}
				}
				if !dup {
					instanceAt[node] = append(instanceAt[node], tag)
				}
			}
		}
	}
	for v, p := range coords {
		x, y := px(p)
		fill := "#ffffff"
		switch {
		case v == source:
			fill = "#2ecc71"
		case isDest[v]:
			fill = "#f39c12"
		}
		if net.IsServer(v) {
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="#333333" stroke-width="1.5"/>`+"\n",
				x-nodeR, y-nodeR, 2*nodeR, 2*nodeR, fill)
		} else {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s" stroke="#333333" stroke-width="1.5"/>`+"\n",
				x, y, nodeR, fill)
		}
		label := fmt.Sprintf("%d", v)
		if opts.Names != nil && v < len(opts.Names) {
			label = opts.Names[v]
		}
		if tags := instanceAt[v]; len(tags) > 0 {
			label += " [" + strings.Join(tags, ",") + "]"
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="middle">%s</text>`+"\n",
			x, y+labelDy, escape(label))
	}

	// Legend.
	if emb != nil {
		k := emb.Task.K()
		for j := 0; j <= k; j++ {
			y := 40.0 + float64(j)*16
			fmt.Fprintf(&b, `<line x1="%.0f" y1="%.1f" x2="%.0f" y2="%.1f" stroke="%s" stroke-width="3"/>`+"\n",
				canvas-150, y, canvas-120, y, stageColors[j%len(stageColors)])
			fmt.Fprintf(&b, `<text x="%.0f" y="%.1f" font-family="sans-serif" font-size="11">stage %d</text>`+"\n",
				canvas-112, y+4, j)
		}
	}
	b.WriteString("</svg>\n")
	return []byte(b.String()), nil
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
