package viz

import (
	"strings"
	"testing"
)

func TestRenderDOTNetworkOnly(t *testing.T) {
	net, _, names := solveOne(t)
	out := string(RenderDOT(net, nil, Options{Names: names, Title: "palmetto"}))
	if !strings.HasPrefix(out, "graph sft {") || !strings.HasSuffix(out, "}\n") {
		t.Fatalf("not a DOT graph:\n%.60s", out)
	}
	if !strings.Contains(out, `label="palmetto"`) {
		t.Error("title missing")
	}
	if !strings.Contains(out, `label="Columbia"`) {
		t.Error("city labels missing")
	}
	if strings.Contains(out, "penwidth=2") {
		t.Error("embedding edges drawn without an embedding")
	}
	// 45 nodes, each with a pos attribute.
	if got := strings.Count(out, "pos="); got != 45 {
		t.Errorf("pos attributes = %d, want 45", got)
	}
}

func TestRenderDOTWithEmbedding(t *testing.T) {
	net, emb, names := solveOne(t)
	out := string(RenderDOT(net, emb, Options{Names: names}))
	if !strings.Contains(out, "penwidth=2") {
		t.Error("no embedding edges highlighted")
	}
	if !strings.Contains(out, `label="s`) {
		t.Errorf("stage labels missing:\n%.200s", out)
	}
	if !strings.Contains(out, `fillcolor="#2ecc71"`) {
		t.Error("source fill missing")
	}
	if !strings.Contains(out, `fillcolor="#f39c12"`) {
		t.Error("destination fill missing")
	}
	// Balanced braces; edges use the undirected operator.
	if strings.Count(out, "{") != strings.Count(out, "}") {
		t.Error("unbalanced braces")
	}
	if !strings.Contains(out, " -- ") {
		t.Error("no undirected edges emitted")
	}
}
