package viz

import (
	"fmt"
	"strings"

	"sftree/internal/nfv"
)

// RenderDOT emits the network (and optionally an embedding) in
// Graphviz DOT form, for researchers who post-process topologies with
// the graphviz toolchain instead of viewing SVGs. Stage edges are
// colored like RenderSVG; the base topology stays grey. Coordinates,
// when present, become fixed node positions (neato-compatible).
func RenderDOT(net *nfv.Network, emb *nfv.Embedding, opts Options) []byte {
	var b strings.Builder
	b.WriteString("graph sft {\n")
	if opts.Title != "" {
		fmt.Fprintf(&b, "  label=%q;\n", opts.Title)
	}
	b.WriteString("  node [shape=circle, fontsize=10];\n")

	coords := net.Coords()
	isDest := map[int]bool{}
	source := -1
	if emb != nil {
		source = emb.Task.Source
		for _, d := range emb.Task.Destinations {
			isDest[d] = true
		}
	}
	for v := 0; v < net.NumNodes(); v++ {
		attrs := []string{}
		label := fmt.Sprintf("%d", v)
		if opts.Names != nil && v < len(opts.Names) {
			label = opts.Names[v]
		}
		attrs = append(attrs, fmt.Sprintf("label=%q", label))
		if net.IsServer(v) {
			attrs = append(attrs, "shape=box")
		}
		switch {
		case v == source:
			attrs = append(attrs, `style=filled`, `fillcolor="#2ecc71"`)
		case isDest[v]:
			attrs = append(attrs, `style=filled`, `fillcolor="#f39c12"`)
		}
		if coords != nil {
			attrs = append(attrs, fmt.Sprintf(`pos="%.1f,%.1f!"`, coords[v].X, coords[v].Y))
		}
		fmt.Fprintf(&b, "  n%d [%s];\n", v, strings.Join(attrs, ", "))
	}

	// Which (stage, edge) pairs does the embedding use?
	type stagePair struct {
		level int
		key   [2]int
	}
	used := map[[2]int][]int{} // canonical pair -> stages
	if emb != nil {
		seen := map[stagePair]bool{}
		for _, w := range emb.Walks {
			for _, seg := range w {
				for i := 1; i < len(seg.Path); i++ {
					u, v := seg.Path[i-1], seg.Path[i]
					if u > v {
						u, v = v, u
					}
					sp := stagePair{level: seg.Level, key: [2]int{u, v}}
					if !seen[sp] {
						seen[sp] = true
						used[sp.key] = append(used[sp.key], seg.Level)
					}
				}
			}
		}
	}
	drawn := map[[2]int]bool{}
	for _, e := range net.Graph().Edges() {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		key := [2]int{u, v}
		if drawn[key] {
			continue // collapse parallels in the drawing
		}
		drawn[key] = true
		if stages, ok := used[key]; ok {
			colors := make([]string, len(stages))
			for i, st := range stages {
				colors[i] = stageColors[st%len(stageColors)]
			}
			fmt.Fprintf(&b, "  n%d -- n%d [color=%q, penwidth=2, label=\"%s\"];\n",
				u, v, strings.Join(colors, ":"), stageList(stages))
			continue
		}
		fmt.Fprintf(&b, "  n%d -- n%d [color=\"#cccccc\"];\n", u, v)
	}
	b.WriteString("}\n")
	return []byte(b.String())
}

func stageList(stages []int) string {
	parts := make([]string, len(stages))
	for i, s := range stages {
		parts[i] = fmt.Sprintf("s%d", s)
	}
	return strings.Join(parts, ",")
}
