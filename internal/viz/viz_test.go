package viz

import (
	"bytes"
	"encoding/xml"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"sftree/internal/core"
	"sftree/internal/graph"
	"sftree/internal/netgen"
	"sftree/internal/nfv"
	"sftree/internal/topology"
)

func solveOne(t *testing.T) (*nfv.Network, *nfv.Embedding, []string) {
	t.Helper()
	g, coords, names := topology.Palmetto()
	rng := rand.New(rand.NewSource(3))
	net, err := netgen.Materialize(g, coords, netgen.PaperConfig(45, 2), rng)
	if err != nil {
		t.Fatal(err)
	}
	task, err := netgen.GenerateTask(net, rng, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Solve(net, task, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return net, res.Embedding, names
}

// assertWellFormedXML runs the SVG through the stdlib XML decoder.
func assertWellFormedXML(t *testing.T, blob []byte) {
	t.Helper()
	dec := xml.NewDecoder(bytes.NewReader(blob))
	for {
		if _, err := dec.Token(); err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG is not well-formed XML: %v", err)
		}
	}
}

func TestRenderNetworkOnly(t *testing.T) {
	net, _, names := solveOne(t)
	blob, err := RenderSVG(net, nil, Options{Names: names, Title: "PalmettoNet"})
	if err != nil {
		t.Fatal(err)
	}
	assertWellFormedXML(t, blob)
	out := string(blob)
	if !strings.Contains(out, "PalmettoNet") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "Columbia") {
		t.Error("city labels missing")
	}
	if strings.Contains(out, "stage 0") {
		t.Error("legend drawn without an embedding")
	}
}

func TestRenderWithEmbedding(t *testing.T) {
	net, emb, names := solveOne(t)
	blob, err := RenderSVG(net, emb, Options{Names: names})
	if err != nil {
		t.Fatal(err)
	}
	assertWellFormedXML(t, blob)
	out := string(blob)
	if !strings.Contains(out, "stage 0") || !strings.Contains(out, "stage 3") {
		t.Error("stage legend incomplete for k=3")
	}
	// Source and destination fills must appear.
	if !strings.Contains(out, "#2ecc71") {
		t.Error("source highlight missing")
	}
	if !strings.Contains(out, "#f39c12") {
		t.Error("destination highlight missing")
	}
	// Instance tags like f7 or +f7 must appear somewhere in labels.
	if !strings.Contains(out, "[f") && !strings.Contains(out, "[+f") {
		t.Error("instance labels missing")
	}
}

func TestRenderNoCoords(t *testing.T) {
	g := graph.New(2)
	g.MustAddEdge(0, 1, 1)
	net := nfv.NewNetwork(g, nfv.DefaultCatalog())
	if _, err := RenderSVG(net, nil, Options{}); !errors.Is(err, ErrNoCoords) {
		t.Errorf("got %v, want ErrNoCoords", err)
	}
}

func TestEscape(t *testing.T) {
	if got := escape(`a<b>&"c`); got != `a&lt;b&gt;&amp;&quot;c` {
		t.Errorf("escape = %q", got)
	}
}

func TestRenderDegenerateCoords(t *testing.T) {
	// All nodes at the same point: spans are zero; rendering must not
	// divide by zero or emit NaNs.
	g := graph.New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	net := nfv.NewNetwork(g, nfv.DefaultCatalog())
	net.SetCoords([]nfv.Point{{X: 5, Y: 5}, {X: 5, Y: 5}, {X: 5, Y: 5}})
	blob, err := RenderSVG(net, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(blob), "NaN") {
		t.Error("NaN coordinates emitted")
	}
	assertWellFormedXML(t, blob)
}
