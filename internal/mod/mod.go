// Package mod builds the multilevel overlay directed (MOD) network of
// the paper's Algorithm 1 and its *expanded* form (Fig. 4), in which
// every overlay node is split into an in/out pair joined by a virtual
// arc weighted with the VNF setup cost. A single Dijkstra run from the
// source over the expanded MOD network yields, for every candidate
// host of the last chain VNF, the cost-optimal SFC embedding ending
// there (Theorem 2).
//
// Columns correspond to chain positions 1..k, rows to server nodes of
// the target network. Arcs between adjacent columns carry the
// shortest-path cost between the corresponding physical nodes, so the
// overlay loses no information from the original network.
package mod

import (
	"errors"
	"fmt"

	"sftree/internal/graph"
	"sftree/internal/nfv"
)

var (
	// ErrNoServers reports a network without any server node.
	ErrNoServers = errors.New("mod: network has no server nodes")
	// ErrEmptyChain reports an empty SFC.
	ErrEmptyChain = errors.New("mod: empty chain")
	// ErrSourceUnreachable reports that no server is reachable from
	// the source, so no SFC can be embedded.
	ErrSourceUnreachable = errors.New("mod: no server reachable from source")
)

// Network is the expanded MOD network for one (network, source, chain)
// triple.
type Network struct {
	net     *nfv.Network
	chain   nfv.SFC
	source  int
	servers []int   // physical IDs of candidate host nodes
	rowOf   []int32 // node -> row index, -1 for non-servers
	dg      *graph.DCSR
}

// Overlay node ID layout: 0 is the source; for column j in [1..k] and
// server row r, the "in" node is 1 + 2*((j-1)*S + r) and the "out"
// node is in+1.
func (m *Network) inID(j, row int) int  { return 1 + 2*((j-1)*len(m.servers)+row) }
func (m *Network) outID(j, row int) int { return m.inID(j, row) + 1 }

// Build constructs the expanded MOD network. Setup costs reflect
// deployment state: pre-deployed chain VNFs cost zero (§IV-D).
func Build(net *nfv.Network, source int, chain nfv.SFC) (*Network, error) {
	if len(chain) == 0 {
		return nil, ErrEmptyChain
	}
	for _, f := range chain {
		if _, err := net.VNF(f); err != nil {
			return nil, fmt.Errorf("mod: %w", err)
		}
	}
	servers := net.Servers()
	if len(servers) == 0 {
		return nil, ErrNoServers
	}
	if source < 0 || source >= net.NumNodes() {
		return nil, fmt.Errorf("mod: %w: source %d", graph.ErrNodeOutOfRange, source)
	}
	metric := net.Metric()

	m := &Network{
		net:     net,
		chain:   append(nfv.SFC(nil), chain...),
		source:  source,
		servers: servers,
		rowOf:   make([]int32, net.NumNodes()),
	}
	for v := range m.rowOf {
		m.rowOf[v] = -1
	}
	for r, v := range servers {
		m.rowOf[v] = int32(r)
	}
	k := len(chain)
	s := len(servers)

	// The overlay's arc counts are known in closed form, so it is built
	// directly into arc-exact CSR storage: a counting pass fills the
	// per-node out-degrees, then the arcs are placed in the same order
	// the adjacency-list construction used (so Dijkstra tie-breaking is
	// unchanged). reachOut[ra] counts servers reachable from server ra,
	// the out-degree of every column-j "out" node with j < k.
	deg := make([]int32, 1+2*k*s)
	reachOut := make([]int32, s)
	reachable := false
	for ra, va := range servers {
		if metric.Dist[source][va] != graph.Inf {
			reachable = true
			deg[0]++
		}
		for j := 1; j <= k; j++ {
			deg[m.inID(j, ra)]++ // virtual in->out arc
		}
		var cnt int32
		for _, vb := range servers {
			if metric.Dist[va][vb] != graph.Inf {
				cnt++
			}
		}
		reachOut[ra] = cnt
	}
	if !reachable {
		return nil, ErrSourceUnreachable
	}
	for j := 1; j < k; j++ {
		for ra := range servers {
			deg[m.outID(j, ra)] = reachOut[ra]
		}
	}
	m.dg = graph.NewDCSR(deg)

	for r, v := range servers {
		// Source -> first column (Fig. 4 step 1).
		if d := metric.Dist[source][v]; d != graph.Inf {
			m.dg.AddArc(0, m.inID(1, r), d)
		}
		// Virtual in->out arcs carrying setup costs, one per column.
		for j := 1; j <= k; j++ {
			m.dg.AddArc(m.inID(j, r), m.outID(j, r), net.SetupCost(chain[j-1], v))
		}
	}
	// Column j out -> column j+1 in, fully connected with shortest-path
	// costs (Algorithm 1 step 2).
	for j := 1; j < k; j++ {
		for ra, va := range servers {
			da := metric.Dist[va]
			for rb, vb := range servers {
				if d := da[vb]; d != graph.Inf {
					m.dg.AddArc(m.outID(j, ra), m.inID(j+1, rb), d)
				}
			}
		}
	}
	return m, nil
}

// Chain returns the SFC the overlay was built for.
func (m *Network) Chain() nfv.SFC { return append(nfv.SFC(nil), m.chain...) }

// Servers returns the candidate host nodes (physical IDs) forming the
// overlay rows.
func (m *Network) Servers() []int { return append([]int(nil), m.servers...) }

// NumOverlayNodes returns the size of the expanded overlay, including
// the source.
func (m *Network) NumOverlayNodes() int { return m.dg.NumNodes() }

// NumOverlayArcs returns the arc count of the expanded overlay.
func (m *Network) NumOverlayArcs() int { return m.dg.NumArcs() }

// SFCSolution is the result of one Dijkstra sweep over the expanded
// MOD network: per candidate last-VNF host, the optimal SFC embedding
// cost and host sequence.
type SFCSolution struct {
	m    *Network
	tree *graph.ShortestPathTree
}

// SolveSFC runs Dijkstra from the source over the expanded overlay.
func (m *Network) SolveSFC() *SFCSolution {
	return &SFCSolution{m: m, tree: m.dg.Dijkstra(0)}
}

// CostTo returns the minimum cost (setup + links) of embedding the
// whole chain with its last VNF hosted on physical node v, or +Inf if
// v is not a reachable server.
func (s *SFCSolution) CostTo(v int) float64 {
	r := s.m.row(v)
	if r < 0 {
		return graph.Inf
	}
	return s.tree.Dist[s.m.outID(len(s.m.chain), r)]
}

// row returns v's server row index, or -1 when v is not a server.
func (m *Network) row(v int) int {
	if v < 0 || v >= len(m.rowOf) {
		return -1
	}
	return int(m.rowOf[v])
}

// HostsTo returns the chain host sequence (one physical node per chain
// position, repeats allowed) of the optimal embedding ending at v, or
// nil if unreachable.
func (s *SFCSolution) HostsTo(v int) []int {
	r := s.m.row(v)
	if r < 0 {
		return nil
	}
	goal := s.m.outID(len(s.m.chain), r)
	overlay := s.tree.PathTo(goal)
	if overlay == nil {
		return nil
	}
	k := len(s.m.chain)
	hosts := make([]int, 0, k)
	for _, id := range overlay {
		if id == 0 {
			continue
		}
		// Only record each column once, at its "in" node.
		idx := id - 1
		if idx%2 == 0 { // in node
			row := (idx / 2) % len(s.m.servers)
			hosts = append(hosts, s.m.servers[row])
		}
	}
	if len(hosts) != k {
		return nil
	}
	return hosts
}

// BestHost returns the candidate last-VNF host with the cheapest SFC
// embedding and its cost.
func (s *SFCSolution) BestHost() (int, float64) {
	best, bestCost := -1, graph.Inf
	for _, v := range s.m.servers {
		if c := s.CostTo(v); c < bestCost {
			best, bestCost = v, c
		}
	}
	return best, bestCost
}

// ChainCost recomputes the cost of a host sequence directly from the
// metric and setup costs: dist(S,h1) + sum_j setup(l_j,h_j) +
// sum_j dist(h_j,h_{j+1}). Used to cross-check HostsTo decoding.
func (m *Network) ChainCost(hosts []int) float64 {
	if len(hosts) != len(m.chain) {
		return graph.Inf
	}
	metric := m.net.Metric()
	cost := metric.Dist[m.source][hosts[0]]
	for j, h := range hosts {
		cost += m.net.SetupCost(m.chain[j], h)
		if j+1 < len(hosts) {
			cost += metric.Dist[h][hosts[j+1]]
		}
	}
	return cost
}
