package mod

import (
	"sync"
	"sync/atomic"

	"sftree/internal/nfv"
)

// ChainSig returns a compact signature of an SFC: the chain's VNF ids
// in order, rendered into a byte string usable as a map key. Two tasks
// with equal signatures embed over the identical overlay skeleton.
func ChainSig(chain nfv.SFC) string {
	// Varint-ish little scheme keeps the common case (ids < 128) at one
	// byte per VNF without pulling in encoding/binary at call sites.
	buf := make([]byte, 0, 2*len(chain))
	for _, f := range chain {
		u := uint(f)
		for u >= 0x80 {
			buf = append(buf, byte(u)|0x80)
			u >>= 7
		}
		buf = append(buf, byte(u))
	}
	return string(buf)
}

// cacheKey identifies one reusable overlay: the (source, chain) pair
// it embeds plus the network version it was built against. ID is the
// network incarnation (process-unique, shared by clones), gen the
// graph generation (topology + metric identity), epoch the deployment
// epoch (setup costs of the virtual arcs reflect deployment state).
type cacheKey struct {
	source int
	sig    string
	id     uint64
	gen    uint64
	epoch  uint64
}

// cacheEntry is a singleflight slot: the first caller builds, every
// concurrent same-key caller waits on the Once and shares the result.
type cacheEntry struct {
	once sync.Once
	m    *Network
	err  error
}

// Scaffold-cache traffic counters, process-global across all caches
// (mirroring nfv.MetricCacheStats): a hit means an admission skipped
// the full overlay construction because a same-signature solve already
// built it at the same network version.
var scaffoldHits, scaffoldMisses atomic.Int64

// CacheStats reports the cumulative scaffold-cache traffic of every
// Cache in the process.
func CacheStats() (hits, misses int64) {
	return scaffoldHits.Load(), scaffoldMisses.Load()
}

// maxCacheEntries bounds one generation's worth of scaffolds; the mix
// of live (source, chain) pairs is small in practice, so eviction is
// wholesale rather than LRU.
const maxCacheEntries = 256

// Cache memoizes expanded MOD networks keyed by (source, chain
// signature, graph generation, deployment epoch). Because the key pins
// the exact network version, a cached overlay is bit-identical to what
// Build would produce — reuse cannot change solver results. Entries
// from superseded versions are dropped as soon as a newer version is
// requested, so the cache holds at most one version's scaffolds (the
// current one) at a time. Safe for concurrent use; concurrent requests
// for the same key share one build (singleflight).
//
// Graph generations and deployment epochs are per-network counters, so
// the key also carries the network's process-unique incarnation id: a
// rebased manager feeding the cache a freshly materialized network can
// never alias scaffolds of the network it replaced. Owners that swap
// networks should still call Purge to release the dead entries
// promptly.
type Cache struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
	// version of the entries currently held; a request for a newer
	// version evicts everything older in one shot.
	id, gen, epoch uint64
}

// NewCache returns an empty scaffold cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[cacheKey]*cacheEntry)}
}

// Get returns the expanded MOD network for (net, source, chain),
// building and memoizing it on first use. net must be at rest for the
// duration of the call (the dynamic manager passes immutable
// snapshots); the returned overlay is shared and strictly read-only.
func (c *Cache) Get(net *nfv.Network, source int, chain nfv.SFC) (*Network, error) {
	key := cacheKey{
		source: source,
		sig:    ChainSig(chain),
		id:     net.IncarnationID(),
		gen:    net.Graph().Generation(),
		epoch:  net.DeployEpoch(),
	}
	c.mu.Lock()
	if key.id != c.id || key.gen != c.gen || key.epoch != c.epoch {
		// The network moved on; every scaffold built against an older
		// version is dead weight (a version triple never repeats).
		clear(c.entries)
		c.id, c.gen, c.epoch = key.id, key.gen, key.epoch
	}
	e, ok := c.entries[key]
	if !ok {
		if len(c.entries) >= maxCacheEntries {
			clear(c.entries)
		}
		e = &cacheEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	if ok {
		scaffoldHits.Add(1)
	} else {
		scaffoldMisses.Add(1)
	}
	e.once.Do(func() { e.m, e.err = Build(net, source, chain) })
	return e.m, e.err
}

// Purge drops every cached scaffold. Call it when the underlying
// network object is replaced so dead entries are released immediately
// instead of lingering until the next version-mismatch eviction.
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	clear(c.entries)
	c.id, c.gen, c.epoch = 0, 0, 0
}
