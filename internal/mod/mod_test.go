package mod

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"sftree/internal/graph"
	"sftree/internal/nfv"
)

// buildNet creates a random connected network where every node is a
// server with ample capacity and random setup costs.
func buildNet(rng *rand.Rand, n, extraEdges, catalogSize int) *nfv.Network {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(rng.Intn(v), v, 1+rng.Float64()*9)
	}
	for i := 0; i < extraEdges; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.MustAddEdge(u, v, 1+rng.Float64()*9)
		}
	}
	catalog := make([]nfv.VNF, catalogSize)
	for f := range catalog {
		catalog[f] = nfv.VNF{ID: f, Name: "f", Demand: 1}
	}
	net := nfv.NewNetwork(g, catalog)
	for v := 0; v < n; v++ {
		if err := net.SetServer(v, 100); err != nil {
			panic(err)
		}
		for f := range catalog {
			if err := net.SetSetupCost(f, v, rng.Float64()*5); err != nil {
				panic(err)
			}
		}
	}
	return net
}

// bruteForceSFC enumerates every host tuple and returns the cheapest
// chain cost ending at each node.
func bruteForceSFC(net *nfv.Network, source int, chain nfv.SFC) map[int]float64 {
	metric := net.Metric()
	servers := net.Servers()
	best := make(map[int]float64, len(servers))
	for _, v := range servers {
		best[v] = graph.Inf
	}
	k := len(chain)
	hosts := make([]int, k)
	var recur func(j int, prev int, acc float64)
	recur = func(j int, prev int, acc float64) {
		if j == k {
			last := hosts[k-1]
			if acc < best[last] {
				best[last] = acc
			}
			return
		}
		for _, v := range servers {
			hosts[j] = v
			step := metric.Dist[prev][v] + net.SetupCost(chain[j], v)
			recur(j+1, v, acc+step)
		}
	}
	recur(0, source, 0)
	return best
}

func TestBuildValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := buildNet(rng, 5, 3, 4)
	if _, err := Build(net, 0, nil); !errors.Is(err, ErrEmptyChain) {
		t.Errorf("empty chain: got %v", err)
	}
	if _, err := Build(net, 0, nfv.SFC{99}); !errors.Is(err, nfv.ErrUnknownVNF) {
		t.Errorf("unknown VNF: got %v", err)
	}
	if _, err := Build(net, -1, nfv.SFC{0}); !errors.Is(err, graph.ErrNodeOutOfRange) {
		t.Errorf("bad source: got %v", err)
	}

	// Network with no servers.
	g := graph.New(2)
	g.MustAddEdge(0, 1, 1)
	bare := nfv.NewNetwork(g, nfv.DefaultCatalog())
	if _, err := Build(bare, 0, nfv.SFC{0}); !errors.Is(err, ErrNoServers) {
		t.Errorf("no servers: got %v", err)
	}
}

func TestBuildUnreachableSource(t *testing.T) {
	// Source in one component, all servers in another.
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(2, 3, 1)
	net := nfv.NewNetwork(g, nfv.DefaultCatalog())
	if err := net.SetServer(2, 5); err != nil {
		t.Fatal(err)
	}
	if err := net.SetServer(3, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := Build(net, 0, nfv.SFC{0}); !errors.Is(err, ErrSourceUnreachable) {
		t.Errorf("got %v, want ErrSourceUnreachable", err)
	}
}

func TestOverlayDimensions(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := buildNet(rng, 6, 4, 5)
	chain := nfv.SFC{0, 1, 2}
	m, err := Build(net, 0, chain)
	if err != nil {
		t.Fatal(err)
	}
	k, s := len(chain), 6
	if got, want := m.NumOverlayNodes(), 1+2*k*s; got != want {
		t.Errorf("overlay nodes = %d, want %d", got, want)
	}
	// Connected network: s source arcs + k*s virtual + (k-1)*s*s column arcs.
	if got, want := m.NumOverlayArcs(), s+k*s+(k-1)*s*s; got != want {
		t.Errorf("overlay arcs = %d, want %d", got, want)
	}
}

func TestSolveSFCMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(5) // 3..7 nodes
		k := 1 + rng.Intn(3) // chain length 1..3
		net := buildNet(rng, n, n, k+2)
		chain := make(nfv.SFC, k)
		for j := range chain {
			chain[j] = j
		}
		source := rng.Intn(n)
		m, err := Build(net, source, chain)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sol := m.SolveSFC()
		want := bruteForceSFC(net, source, chain)
		for _, v := range net.Servers() {
			if math.Abs(sol.CostTo(v)-want[v]) > 1e-9 {
				t.Fatalf("trial %d: CostTo(%d) = %v, brute force %v",
					trial, v, sol.CostTo(v), want[v])
			}
		}
	}
}

func TestHostsToConsistentWithCost(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(5)
		k := 1 + rng.Intn(4)
		net := buildNet(rng, n, n, k+1)
		chain := make(nfv.SFC, k)
		for j := range chain {
			chain[j] = j
		}
		m, err := Build(net, 0, chain)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sol := m.SolveSFC()
		for _, v := range net.Servers() {
			hosts := sol.HostsTo(v)
			if hosts == nil {
				t.Fatalf("trial %d: no hosts to %d", trial, v)
			}
			if len(hosts) != k {
				t.Fatalf("trial %d: %d hosts, want %d", trial, len(hosts), k)
			}
			if hosts[k-1] != v {
				t.Fatalf("trial %d: last host %d, want %d", trial, hosts[k-1], v)
			}
			if got, want := m.ChainCost(hosts), sol.CostTo(v); math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d: ChainCost(%v) = %v, CostTo = %v", trial, hosts, got, want)
			}
		}
	}
}

func TestDeployedVNFMakesChainCheaper(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := buildNet(rng, 5, 4, 3)
	chain := nfv.SFC{0, 1}
	m1, err := Build(net, 0, chain)
	if err != nil {
		t.Fatal(err)
	}
	_, before := m1.SolveSFC().BestHost()

	// Deploy chain VNFs everywhere: setup becomes zero, so the best
	// chain cost can only drop (to pure link cost).
	for _, v := range net.Servers() {
		for _, f := range chain {
			if err := net.Deploy(f, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	m2, err := Build(net, 0, chain)
	if err != nil {
		t.Fatal(err)
	}
	best, after := m2.SolveSFC().BestHost()
	if after > before+1e-9 {
		t.Errorf("deploying VNFs increased best cost: %v -> %v", before, after)
	}
	if best < 0 {
		t.Error("no best host found")
	}
	// With all setup free and source itself a server, hosting the whole
	// chain on the source costs zero.
	if got := m2.SolveSFC().CostTo(0); got != 0 {
		t.Errorf("all-deployed chain at source costs %v, want 0", got)
	}
}

// TestDeployedVNFCategories pins the paper's §IV-D handling: chain
// VNFs already deployed get zero-cost virtual arcs, while deployed
// VNFs *outside* the chain do not occupy overlay columns — they only
// shrink the node's free capacity.
func TestDeployedVNFCategories(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	catalog := []nfv.VNF{
		{ID: 0, Name: "in-chain", Demand: 1},
		{ID: 1, Name: "off-chain", Demand: 1},
	}
	net := nfv.NewNetwork(g, catalog)
	if err := net.SetServer(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := net.SetSetupCost(0, 1, 7); err != nil {
		t.Fatal(err)
	}
	// Category 2: an off-chain VNF consumes capacity but must not add
	// overlay structure.
	if err := net.Deploy(1, 1); err != nil {
		t.Fatal(err)
	}
	chain := nfv.SFC{0}
	m, err := Build(net, 0, chain)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.NumOverlayNodes(), 1+2*1*1; got != want {
		t.Errorf("overlay nodes = %d, want %d (off-chain VNF must not add columns)", got, want)
	}
	// Not deployed in chain: the virtual arc carries the setup cost 7.
	if got := m.SolveSFC().CostTo(1); got != 1+7 {
		t.Errorf("cost = %v, want 8", got)
	}
	// Category 1: deploying the chain VNF zeroes the virtual arc.
	if err := net.Deploy(0, 1); err != nil {
		t.Fatal(err)
	}
	m2, err := Build(net, 0, chain)
	if err != nil {
		t.Fatal(err)
	}
	if got := m2.SolveSFC().CostTo(1); got != 1 {
		t.Errorf("cost with deployed chain VNF = %v, want 1", got)
	}
	// And the node is now full: capacity 2, both instances deployed.
	if net.FreeCapacity(1) != 0 {
		t.Errorf("free capacity = %v, want 0", net.FreeCapacity(1))
	}
}

func TestChainCostLengthMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := buildNet(rng, 4, 2, 3)
	m, err := Build(net, 0, nfv.SFC{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if c := m.ChainCost([]int{1}); !math.IsInf(c, 1) {
		t.Errorf("short host list cost = %v, want Inf", c)
	}
}

func TestCostToNonServer(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	net := nfv.NewNetwork(g, nfv.DefaultCatalog())
	if err := net.SetServer(1, 5); err != nil {
		t.Fatal(err)
	}
	m, err := Build(net, 0, nfv.SFC{0})
	if err != nil {
		t.Fatal(err)
	}
	sol := m.SolveSFC()
	if c := sol.CostTo(2); !math.IsInf(c, 1) {
		t.Errorf("CostTo(non-server) = %v, want Inf", c)
	}
	if h := sol.HostsTo(2); h != nil {
		t.Errorf("HostsTo(non-server) = %v, want nil", h)
	}
}
