package sim

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"sftree/internal/baseline"
	"sftree/internal/core"
	"sftree/internal/netgen"
	"sftree/internal/nfv"
)

func solveOne(t *testing.T, seed int64, n, k, nd int) (*nfv.Network, *core.Result) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	net, err := netgen.Generate(netgen.PaperConfig(n, 2), rng)
	if err != nil {
		t.Fatal(err)
	}
	task, err := netgen.GenerateTask(net, rng, nd, k)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Solve(net, task, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return net, res
}

func TestReplayAgreesWithCostOracle(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		net, res := solveOne(t, seed, 30, 4, 5)
		rep, err := Replay(net, res.Embedding)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		bd := net.Cost(res.Embedding)
		if math.Abs(rep.TotalCost-bd.Total) > 1e-6 {
			t.Fatalf("seed %d: replay %v vs oracle %v", seed, rep.TotalCost, bd.Total)
		}
		if math.Abs(rep.SetupCost-bd.Setup) > 1e-6 {
			t.Fatalf("seed %d: setup %v vs %v", seed, rep.SetupCost, bd.Setup)
		}
		if math.Abs(rep.LinkCost-bd.Link) > 1e-6 {
			t.Fatalf("seed %d: link %v vs %v", seed, rep.LinkCost, bd.Link)
		}
		if rep.Delivered != len(res.Embedding.Task.Destinations) {
			t.Fatalf("seed %d: delivered %d", seed, rep.Delivered)
		}
	}
}

func TestReplayAgreesForBaselines(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	net, err := netgen.Generate(netgen.PaperConfig(40, 2), rng)
	if err != nil {
		t.Fatal(err)
	}
	task, err := netgen.GenerateTask(net, rng, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	for name, run := range map[string]func() (*core.Result, error){
		"sca": func() (*core.Result, error) { return baseline.SCA(net, task, core.Options{}) },
		"rsa": func() (*core.Result, error) { return baseline.RSA(net, task, rng, core.Options{}) },
	} {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rep, err := Replay(net, res.Embedding)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(rep.TotalCost-res.FinalCost) > 1e-6 {
			t.Fatalf("%s: replay %v vs solver %v", name, rep.TotalCost, res.FinalCost)
		}
	}
}

func TestReplayDetectsMissingInstance(t *testing.T) {
	net, res := solveOne(t, 3, 20, 2, 3)
	emb := res.Embedding.Clone()
	// Remove all new instances without touching walks; unless the whole
	// chain was served by deployed instances, the replay must fail.
	if len(emb.NewInstances) == 0 {
		t.Skip("all instances reused; nothing to remove")
	}
	emb.NewInstances = nil
	if _, err := Replay(net, emb); !errors.Is(err, ErrReplay) {
		t.Errorf("got %v, want ErrReplay", err)
	}
}

func TestReplayDetectsBrokenWalk(t *testing.T) {
	net, res := solveOne(t, 4, 20, 2, 3)
	emb := res.Embedding.Clone()
	// Truncate the first multi-hop segment we can find; the following
	// segment then no longer starts where the flow is.
	broke := false
	for di := range emb.Walks {
		for si := range emb.Walks[di] {
			if len(emb.Walks[di][si].Path) > 1 {
				emb.Walks[di][si].Path = emb.Walks[di][si].Path[:1]
				broke = true
				break
			}
		}
		if broke {
			break
		}
	}
	if !broke {
		t.Skip("no multi-hop segment to truncate")
	}
	if _, err := Replay(net, emb); !errors.Is(err, ErrReplay) {
		t.Errorf("got %v, want ErrReplay", err)
	}
}

func TestReplayDetectsWrongStageOrder(t *testing.T) {
	net, res := solveOne(t, 5, 20, 2, 3)
	emb := res.Embedding.Clone()
	if len(emb.Walks[0]) < 3 {
		t.Skip("walk too short to permute")
	}
	emb.Walks[0][0], emb.Walks[0][1] = emb.Walks[0][1], emb.Walks[0][0]
	if _, err := Replay(net, emb); !errors.Is(err, ErrReplay) {
		t.Errorf("got %v, want ErrReplay", err)
	}
}

func TestReplayDetectsWalkCountMismatch(t *testing.T) {
	net, res := solveOne(t, 6, 20, 2, 3)
	emb := res.Embedding.Clone()
	emb.Walks = emb.Walks[:len(emb.Walks)-1]
	if _, err := Replay(net, emb); !errors.Is(err, ErrReplay) {
		t.Errorf("got %v, want ErrReplay", err)
	}
}

func TestReplayLatencyAndInstanceLoads(t *testing.T) {
	net, res := solveOne(t, 8, 25, 3, 5)
	rep, err := Replay(net, res.Embedding)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.LatencyPerDest) != 5 {
		t.Fatalf("latencies = %d", len(rep.LatencyPerDest))
	}
	var sum, maxLat float64
	for di, lat := range rep.LatencyPerDest {
		if lat < 0 {
			t.Errorf("dest %d negative latency", di)
		}
		// Latency bounds hops times min/max edge cost loosely; at least
		// it must be zero iff the walk had zero hops.
		if (lat == 0) != (rep.HopsPerDest[di] == 0) {
			t.Errorf("dest %d: latency %v vs hops %d", di, lat, rep.HopsPerDest[di])
		}
		sum += lat
		if lat > maxLat {
			maxLat = lat
		}
	}
	if math.Abs(rep.MeanLatency-sum/5) > 1e-9 || rep.MaxLatency != maxLat {
		t.Errorf("latency summary: mean %v max %v", rep.MeanLatency, rep.MaxLatency)
	}
	// Instance loads: every chain level serves all 5 destinations in
	// total, spread over its instances.
	perVNF := map[int]int{}
	for _, il := range rep.InstanceLoads {
		if il.Flows < 1 {
			t.Errorf("instance %+v with zero flows", il)
		}
		perVNF[il.VNF] += il.Flows
	}
	for _, f := range res.Embedding.Task.Chain {
		if perVNF[f] != 5 {
			t.Errorf("VNF %d served %d flows, want 5", f, perVNF[f])
		}
	}
	if len(rep.InstanceLoads) != rep.InstancesHit {
		t.Errorf("loads %d != hit %d", len(rep.InstanceLoads), rep.InstancesHit)
	}
}

func TestReplayEdgeLoadsConsistent(t *testing.T) {
	net, res := solveOne(t, 7, 25, 3, 6)
	rep, err := Replay(net, res.Embedding)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, ld := range rep.EdgeLoads {
		if ld.Copies < 1 {
			t.Errorf("edge %d-%d zero copies", ld.U, ld.V)
		}
		if ld.Copies > rep.MaxEdgeLoad {
			t.Errorf("edge %d-%d copies %d exceed max %d", ld.U, ld.V, ld.Copies, rep.MaxEdgeLoad)
		}
		sum += ld.Cost
	}
	if math.Abs(sum-rep.LinkCost) > 1e-6 {
		t.Errorf("edge load cost sum %v != link cost %v", sum, rep.LinkCost)
	}
	for di, hops := range rep.HopsPerDest {
		if hops == 0 && res.Embedding.Task.Destinations[di] != res.Embedding.Task.Source {
			t.Errorf("destination %d reached with zero hops", di)
		}
	}
}
