package sim

import "testing"

func TestRunCrashGatePasses(t *testing.T) {
	rep, err := RunCrash(CrashConfig{
		Nodes:    30,
		Seed:     11,
		Sessions: 12,
		Ops:      25,
		Faults:   5,
		Crashes: []CrashPoint{
			{Op: 15, Torn: true},      // between ops, tearing the active tail
			{Op: 22, MidCommit: true}, // inside the commit critical section
		},
		CheckpointEvery: 8,
		Dir:             t.TempDir(),
	})
	if err != nil {
		t.Fatalf("RunCrash: %v", err)
	}
	if !rep.Passed() {
		t.Fatalf("gate failed: lost=%v mismatches=%v validation=%v",
			rep.LostSessions, rep.Mismatches, rep.ValidationErrors)
	}
	if len(rep.Restores) != 2 {
		t.Fatalf("restores: %+v", rep.Restores)
	}
	// The checkpoint at op 16 precedes the second crash, so that
	// restore must recover from snapshot + tail, not full replay.
	if rep.Restores[1].SnapshotSeq == 0 {
		t.Fatalf("second restore ignored the snapshot: %+v", rep.Restores[1])
	}
	if rep.OracleAdmitted == 0 || rep.OracleLive == 0 {
		t.Fatalf("degenerate oracle run: %+v", rep)
	}
	if !rep.Restores[0].TornTail {
		t.Fatalf("torn crash did not surface a torn tail: %+v", rep.Restores[0])
	}
}

func TestRunCrashTornDoubleCrash(t *testing.T) {
	// A torn crash immediately followed by another crash with no
	// snapshot in between: the tear from the first crash must be
	// truncated during the first recovery, or the second recovery
	// finds a partial frame in what is by then a non-final segment and
	// refuses to start (losing every committed record behind it).
	rep, err := RunCrash(CrashConfig{
		Nodes:    30,
		Seed:     11,
		Sessions: 12,
		Ops:      25,
		Faults:   5,
		Crashes: []CrashPoint{
			{Op: 10, Torn: true},
			{Op: 11},
			{Op: 20, Torn: true, MidCommit: true},
		},
		Dir: t.TempDir(),
	})
	if err != nil {
		t.Fatalf("RunCrash: %v", err)
	}
	if !rep.Passed() {
		t.Fatalf("gate failed: lost=%v mismatches=%v validation=%v",
			rep.LostSessions, rep.Mismatches, rep.ValidationErrors)
	}
	if len(rep.Restores) != 3 {
		t.Fatalf("restores: %+v", rep.Restores)
	}
	if !rep.Restores[0].TornTail || !rep.Restores[2].TornTail {
		t.Fatalf("torn crashes did not surface torn tails: %+v", rep.Restores)
	}
}

// TestRunCrashWithParkedQueue kills the process while an admission
// queue holds accepted-but-undispatched tasks, at both crash flavors
// (between ops and mid-commit). The gate requires zero phantom
// sessions after restore — queued work is not durable — and every
// parked ticket must still terminate with ErrClosed.
func TestRunCrashWithParkedQueue(t *testing.T) {
	rep, err := RunCrash(CrashConfig{
		Nodes:    30,
		Seed:     11,
		Sessions: 12,
		Ops:      25,
		Faults:   5,
		Crashes: []CrashPoint{
			{Op: 14, EnqueuedTasks: 4},
			{Op: 21, MidCommit: true, EnqueuedTasks: 3},
		},
		CheckpointEvery: 8,
		Dir:             t.TempDir(),
	})
	if err != nil {
		t.Fatalf("RunCrash: %v", err)
	}
	if !rep.Passed() {
		t.Fatalf("gate failed: lost=%v mismatches=%v validation=%v",
			rep.LostSessions, rep.Mismatches, rep.ValidationErrors)
	}
	if len(rep.Restores) != 2 {
		t.Fatalf("restores: %+v", rep.Restores)
	}
	if rep.Restores[0].ParkedAbandoned != 4 || rep.Restores[1].ParkedAbandoned != 3 {
		t.Fatalf("parked tickets not audited: %+v", rep.Restores)
	}
}

func TestRunCrashIsDeterministic(t *testing.T) {
	cfg := CrashConfig{
		Nodes: 25, Seed: 3, Sessions: 8, Ops: 15, Faults: 4,
		Crashes: []CrashPoint{{Op: 10}},
	}
	cfg.Dir = t.TempDir()
	a, err := RunCrash(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Dir = t.TempDir()
	b, err := RunCrash(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Passed() || !b.Passed() {
		t.Fatalf("gate failed: %+v / %+v", a, b)
	}
	if a.OracleAdmitted != b.OracleAdmitted || a.OracleCost != b.OracleCost ||
		a.OracleLive != b.OracleLive || a.EventsApplied != b.EventsApplied {
		t.Fatalf("non-deterministic runs:\n%+v\n%+v", a, b)
	}
}
