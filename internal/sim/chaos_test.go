package sim

import (
	"testing"

	"sftree/internal/faults"
)

// TestChaosAcceptance runs the headline resilience gate at the sizes
// the acceptance criteria name: >=20 faults over >=30 live sessions,
// zero validation errors on every non-degraded session after every
// event, and repairs reusing surviving instances where any exist.
func TestChaosAcceptance(t *testing.T) {
	rep, err := RunChaos(ChaosConfig{Nodes: 40, Seed: 7, Sessions: 30, Faults: 20})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SessionsAdmitted < 30 || rep.EventsApplied < 20 {
		t.Fatalf("undersized run: %d sessions, %d events", rep.SessionsAdmitted, rep.EventsApplied)
	}
	for _, ve := range rep.ValidationErrors {
		t.Error(ve)
	}
	if rep.Affected == 0 {
		t.Fatal("no session was ever affected; the schedule exercised nothing")
	}
	if repairs := rep.Patched + rep.Reembeds; repairs > 0 && rep.RepairsWithReuse == 0 {
		t.Fatalf("%d repairs, none reused a surviving instance", repairs)
	}
	if rep.FinalLive != rep.SessionsAdmitted {
		t.Fatalf("sessions vanished: %d live of %d admitted", rep.FinalLive, rep.SessionsAdmitted)
	}
}

// TestChaosIsSeeded: same config, same seed, same report.
func TestChaosIsSeeded(t *testing.T) {
	a, err := RunChaos(ChaosConfig{Nodes: 30, Seed: 3, Sessions: 10, Faults: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos(ChaosConfig{Nodes: 30, Seed: 3, Sessions: 10, Faults: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.Affected != b.Affected || a.Patched != b.Patched || a.Degraded != b.Degraded ||
		a.CostDelta != b.CostDelta || len(a.Events) != len(b.Events) {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d diverged: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
}

// TestChaosWithExplicitSchedule replays a caller-supplied scenario.
func TestChaosWithExplicitSchedule(t *testing.T) {
	// Build the schedule against the same network RunChaos will
	// generate (same seed, same config path).
	probe, err := RunChaos(ChaosConfig{Nodes: 30, Seed: 5, Sessions: 5, Faults: 3})
	if err != nil {
		t.Fatal(err)
	}
	if probe.EventsApplied != 3 {
		t.Fatalf("probe applied %d events", probe.EventsApplied)
	}
	// An explicit empty-ish schedule: no events, nothing breaks.
	rep, err := RunChaos(ChaosConfig{Nodes: 30, Seed: 5, Sessions: 5, Schedule: &faults.Schedule{}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.EventsApplied != 0 || rep.Affected != 0 || len(rep.ValidationErrors) != 0 {
		t.Fatalf("empty schedule produced activity: %+v", rep)
	}
}
