// Crash drives the durability acceptance gate: execute one
// deterministic, seeded script of admissions, releases and fault
// events twice — once straight through (the oracle), once with
// SIGKILL-equivalent crashes injected at configured points, each
// followed by a restore from the write-ahead log — and require the
// two final states to be bit-identical. A crash point can fire
// between operations or *inside* an admission's critical section,
// between the WAL append and the in-memory commit, which is the
// window an ordinary kill test never hits.
package sim

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	"sftree/internal/conformance"
	"sftree/internal/core"
	"sftree/internal/dynamic"
	"sftree/internal/faults"
	"sftree/internal/netgen"
	"sftree/internal/nfv"
	"sftree/internal/queue"
	"sftree/internal/wal"
)

// CrashPoint names one injected crash in the op script.
type CrashPoint struct {
	// Op is the 0-based index into the script. MidCommit false crashes
	// *before* the op runs; MidCommit true arms the admit:post-wal
	// hook, so the crash fires inside that op's commit critical
	// section, after its record is durable but before the in-memory
	// state changes. (If the op turns out not to commit — a rejection —
	// the crash degrades to a post-op kill.)
	Op        int  `json:"op"`
	MidCommit bool `json:"mid_commit"`
	// Torn makes the crash tear the log: a partial frame is left at
	// the tail of the active segment (a SIGKILL mid-append), so the
	// restore must run the torn-tail recovery path — tolerate the
	// tear, truncate it from disk, lose nothing committed before it.
	Torn bool `json:"torn,omitempty"`
	// EnqueuedTasks parks this many accepted-but-undispatched tasks in
	// an admission queue in front of the crashing manager at the moment
	// of the kill. Queued work is not durable — nothing of it reaches
	// the WAL — so the restore must resurrect none of it (zero phantom
	// sessions) and every parked ticket must still terminate (with
	// ErrClosed) when the dead queue is abandoned.
	EnqueuedTasks int `json:"enqueued_tasks,omitempty"`
}

// CrashConfig parameterizes one crash-injection run. Everything is
// seeded; the same config reproduces the same script, crashes and
// states bit for bit.
type CrashConfig struct {
	// Nodes sizes the generated network (paper topology, mu=2).
	Nodes int
	// Seed drives network generation, the fault schedule and the op mix.
	Seed int64
	// Sessions is the initial admitted population before the mixed ops.
	Sessions int
	// Ops is the number of mixed operations (admit/release/fault) after
	// the initial population.
	Ops int
	// Faults bounds the fault events woven into the op mix.
	Faults int
	// Crashes lists the injection points. Ignored for the oracle run.
	Crashes []CrashPoint
	// CheckpointEvery folds a snapshot every N ops in the crashing run
	// (0 disables), so restores exercise snapshot+tail recovery, not
	// just full replay.
	CheckpointEvery int
	// Dir is the WAL directory for the crashing run; empty uses a
	// temporary directory that is removed afterwards.
	Dir string
}

// RestoreStat reports one crash/restore cycle.
type RestoreStat struct {
	Op              int    `json:"op"`
	MidCommit       bool   `json:"mid_commit"`
	SnapshotSeq     uint64 `json:"snapshot_seq"`
	ReplayedRecords int    `json:"replayed_records"`
	TornTail        bool   `json:"torn_tail,omitempty"`
	Recovered       int    `json:"sessions_recovered"`
	ReplayNs        int64  `json:"replay_ns"`
	// ParkedAbandoned counts tickets that sat undispatched in the
	// admission queue at the kill and were audited to terminate with
	// ErrClosed, committing nothing.
	ParkedAbandoned int `json:"parked_abandoned,omitempty"`
}

// CrashReport is the outcome of a crash-injection run.
type CrashReport struct {
	Nodes         int `json:"nodes"`
	Ops           int `json:"ops"`
	Crashes       int `json:"crashes"`
	EventsApplied int `json:"events_applied"`
	// Oracle accounting: what the never-crashed run ended with.
	OracleLive     int           `json:"oracle_live"`
	OracleAdmitted int           `json:"oracle_admitted"`
	OracleCost     float64       `json:"oracle_cost"`
	Restores       []RestoreStat `json:"restores,omitempty"`
	// LostSessions lists committed session IDs the oracle holds but the
	// crashed-and-restored run lost; Mismatches every other divergence
	// (phantom sessions, embedding bytes, costs, refcounts, counters).
	// ValidationErrors lists conformance failures of the restored state.
	// The gate requires all three empty.
	LostSessions     []int    `json:"lost_sessions,omitempty"`
	Mismatches       []string `json:"mismatches,omitempty"`
	ValidationErrors []string `json:"validation_errors,omitempty"`
}

// Passed reports whether the run met the gate: no committed session
// lost, no accounting divergence, restored state conformance-clean.
func (r *CrashReport) Passed() bool {
	return len(r.LostSessions) == 0 && len(r.Mismatches) == 0 && len(r.ValidationErrors) == 0
}

// crashOp is one scripted operation.
type crashOp struct {
	kind int // 0 admit, 1 release, 2 fault
	task nfv.Task
	frac float64 // release: picks among live sessions
	ev   faults.Event
}

// buildScript pre-generates the whole run — network, fault schedule,
// op list — so the oracle and the crashing run execute identical work.
func buildScript(cfg CrashConfig) (*nfv.Network, []crashOp, error) {
	base, err := regenBase(cfg)
	if err != nil {
		return nil, nil, err
	}
	schedRng := rand.New(rand.NewSource(cfg.Seed + 1))
	sched, err := faults.Generate(base, faults.DefaultGenConfig(cfg.Faults), schedRng)
	if err != nil {
		return nil, nil, fmt.Errorf("crash: generate schedule: %w", err)
	}
	opRng := rand.New(rand.NewSource(cfg.Seed + 2))
	var ops []crashOp
	for i := 0; i < cfg.Sessions; i++ {
		task, err := netgen.GenerateTask(base, opRng, 2+opRng.Intn(3), 2+opRng.Intn(2))
		if err != nil {
			return nil, nil, fmt.Errorf("crash: sample task: %w", err)
		}
		ops = append(ops, crashOp{kind: 0, task: task})
	}
	nextEv := 0
	for i := 0; i < cfg.Ops; i++ {
		r := opRng.Float64()
		switch {
		case r < 0.25 && nextEv < len(sched.Events):
			ops = append(ops, crashOp{kind: 2, ev: sched.Events[nextEv]})
			nextEv++
		case r < 0.50:
			ops = append(ops, crashOp{kind: 1, frac: opRng.Float64()})
		default:
			task, err := netgen.GenerateTask(base, opRng, 2+opRng.Intn(3), 2+opRng.Intn(2))
			if err != nil {
				return nil, nil, fmt.Errorf("crash: sample task: %w", err)
			}
			ops = append(ops, crashOp{kind: 0, task: task})
		}
	}
	return base, ops, nil
}

// regenBase regenerates the base network; same seed, same bytes, so a
// restore can rebuild the substrate the crashed run was serving.
func regenBase(cfg CrashConfig) (*nfv.Network, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	base, err := netgen.Generate(netgen.PaperConfig(cfg.Nodes, 2), rng)
	if err != nil {
		return nil, fmt.Errorf("crash: generate network: %w", err)
	}
	return base, nil
}

// crashRunner executes script ops against one manager, tracking the
// fault state so the substrate can be rebuilt after a crash.
type crashRunner struct {
	mgr     *dynamic.Manager
	st      *faults.State
	applied []faults.Event
	events  int
}

func (r *crashRunner) exec(op crashOp) error {
	switch op.kind {
	case 0:
		_, _ = r.mgr.Admit(op.task) // rejections are a legal outcome
	case 1:
		sessions := r.mgr.Sessions()
		if len(sessions) == 0 {
			return nil
		}
		idx := int(op.frac * float64(len(sessions)))
		if idx >= len(sessions) {
			idx = len(sessions) - 1
		}
		if err := r.mgr.Release(sessions[idx].ID); err != nil {
			return fmt.Errorf("release %d: %w", sessions[idx].ID, err)
		}
	case 2:
		if err := r.st.Apply(op.ev); err != nil {
			return fmt.Errorf("apply %v: %w", op.ev, err)
		}
		degraded, err := r.st.Materialize(r.mgr.Network())
		if err != nil {
			return fmt.Errorf("materialize after %v: %w", op.ev, err)
		}
		r.mgr.Rebase(degraded)
		r.applied = append(r.applied, op.ev)
		r.events++
	}
	return nil
}

// parked is one admission queue full of accepted-but-undispatched
// tickets at the moment of a kill.
type parked struct {
	q       *queue.Queue
	tickets []*queue.Ticket
}

// parkTasks fills a bounded queue in front of the crashing manager
// with tasks that are still undispatched when the kill fires: the
// batch window dwarfs the nanoseconds between the last Enqueue and
// the kill, so the tickets are accepted but nothing about them is
// durable. abandon audits the aftermath.
func parkTasks(r *crashRunner, cfg CrashConfig, op, n int) (*parked, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 1000 + int64(op)))
	mgr := r.mgr
	q := queue.New(queue.Config{
		Depth:       n,
		BatchWindow: 10 * time.Second,
		Manager:     func() *dynamic.Manager { return mgr },
	})
	p := &parked{q: q}
	net := mgr.CloneNetwork()
	for i := 0; i < n; i++ {
		task, err := netgen.GenerateTask(net, rng, 2+rng.Intn(3), 2+rng.Intn(2))
		if err != nil {
			return nil, fmt.Errorf("crash: park task: %w", err)
		}
		tk, err := q.Enqueue(context.Background(), task, time.Time{})
		if err != nil {
			return nil, fmt.Errorf("crash: park enqueue: %w", err)
		}
		p.tickets = append(p.tickets, tk)
	}
	return p, nil
}

// abandon closes the dead queue with an already-expired drain budget
// and audits the never-lose-a-task contract across the crash: every
// parked ticket terminates with ErrClosed, and the queue dispatched
// nothing — the WAL saw none of these tasks, so any session the
// restore resurrects for them surfaces as a phantom in compareRuns.
func (p *parked) abandon(op int, rep *CrashReport) int {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = p.q.Close(ctx)
	for i, tk := range p.tickets {
		sess, err := tk.Wait(context.Background())
		if sess != nil || !errors.Is(err, queue.ErrClosed) {
			rep.Mismatches = append(rep.Mismatches,
				fmt.Sprintf("parked ticket %d at op %d: sess=%v err=%v, want ErrClosed", i, op, sess, err))
		}
	}
	if st := p.q.Stats(); st.Admitted != 0 || st.Rejected != 0 || st.Batches != 0 {
		rep.Mismatches = append(rep.Mismatches,
			fmt.Sprintf("parked queue at op %d dispatched work: %+v", op, st))
	}
	return len(p.tickets)
}

// RunCrash executes the oracle and the crash-injected run and compares
// their final states. It returns an error only on setup problems;
// divergences land in the report for the caller to judge.
func RunCrash(cfg CrashConfig) (*CrashReport, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 30
	}
	if cfg.Sessions <= 0 {
		cfg.Sessions = 15
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 30
	}
	if cfg.Faults <= 0 {
		cfg.Faults = 6
	}
	dir := cfg.Dir
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "sftcrash-*"); err != nil {
			return nil, fmt.Errorf("crash: wal dir: %w", err)
		}
		defer os.RemoveAll(dir)
	}
	baseOracle, ops, err := buildScript(cfg)
	if err != nil {
		return nil, err
	}
	rep := &CrashReport{Nodes: baseOracle.NumNodes(), Ops: len(ops), Crashes: len(cfg.Crashes)}

	// Oracle: the same script, no WAL, no crashes.
	oracle := &crashRunner{
		mgr: dynamic.NewManager(baseOracle, core.Options{}),
		st:  faults.NewState(baseOracle),
	}
	for i, op := range ops {
		if err := oracle.exec(op); err != nil {
			return nil, fmt.Errorf("crash: oracle op %d: %w", i, err)
		}
	}
	ost := oracle.mgr.Stats()
	rep.OracleLive, rep.OracleAdmitted, rep.OracleCost = ost.Active, ost.Admitted, ost.AdmittedCost
	rep.EventsApplied = oracle.events

	// Crashing run.
	crashAt := map[int]CrashPoint{}
	for _, cp := range cfg.Crashes {
		crashAt[cp.Op] = cp
	}
	log, rec, err := wal.Open(dir, wal.Config{Policy: wal.SyncAlways})
	if err != nil {
		return nil, fmt.Errorf("crash: wal open: %w", err)
	}
	baseCrash, err := regenBase(cfg)
	if err != nil {
		return nil, err
	}
	run := &crashRunner{
		mgr: dynamic.NewManager(baseCrash, core.Options{}).AttachWAL(log),
		st:  faults.NewState(baseCrash),
	}
	// kill simulates the SIGKILL; both variants are idempotent, so
	// restore can call it again after a mid-commit hook already fired.
	kill := func(cp CrashPoint) {
		if cp.Torn {
			log.CrashTorn()
		} else {
			log.Crash()
		}
	}
	restore := func(op int, cp CrashPoint) error {
		kill(cp)
		base2, err := regenBase(cfg)
		if err != nil {
			return err
		}
		st2 := faults.NewState(base2)
		for _, ev := range run.applied {
			if err := st2.Apply(ev); err != nil {
				return fmt.Errorf("crash: rebuild fault state: %w", err)
			}
		}
		net2, err := st2.Materialize(base2)
		if err != nil {
			return fmt.Errorf("crash: rebuild substrate: %w", err)
		}
		l2, rec2, err := wal.Open(dir, wal.Config{Policy: wal.SyncAlways})
		if err != nil {
			return fmt.Errorf("crash: reopen wal: %w", err)
		}
		m2, rr, err := dynamic.Restore(net2, l2, rec2, core.Options{})
		if err != nil {
			return fmt.Errorf("crash: restore at op %d: %w", op, err)
		}
		rep.Restores = append(rep.Restores, RestoreStat{
			Op: op, MidCommit: cp.MidCommit,
			SnapshotSeq: rr.SnapshotSeq, ReplayedRecords: rr.ReplayedRecords,
			TornTail: rr.TornTail, Recovered: rr.SessionsRecovered,
			ReplayNs: rr.ReplayDuration.Nanoseconds(),
		})
		if cp.Torn && !rr.TornTail {
			// The injection claims a torn write happened; a restore that
			// never saw it means the harness did not exercise the path.
			rep.Mismatches = append(rep.Mismatches,
				fmt.Sprintf("torn crash at op %d did not surface a torn tail", op))
		}
		rep.ValidationErrors = append(rep.ValidationErrors, rr.Errors...)
		log = l2
		run.mgr, run.st = m2, st2
		return nil
	}
	if !rec.Empty() {
		return nil, fmt.Errorf("crash: wal dir %s not empty", dir)
	}

	type crashSentinel struct{}
	for i, op := range ops {
		cp, crashHere := crashAt[i]
		var park *parked
		if crashHere && cp.EnqueuedTasks > 0 {
			// Park queued-but-undispatched tasks so the kill catches a
			// live admission queue mid-flight.
			var perr error
			if park, perr = parkTasks(run, cfg, i, cp.EnqueuedTasks); perr != nil {
				return nil, perr
			}
		}
		audit := func() {
			if park == nil {
				return
			}
			n := park.abandon(i, rep)
			rep.Restores[len(rep.Restores)-1].ParkedAbandoned = n
			park = nil
		}
		if crashHere && !cp.MidCommit {
			if err := restore(i, cp); err != nil {
				return nil, err
			}
			audit()
		}
		if crashHere && cp.MidCommit {
			fired := false
			run.mgr.SetCrashHook(func(point string) {
				if point == "admit:post-wal" {
					fired = true
					kill(cp)
					panic(crashSentinel{})
				}
			})
			err := func() (err error) {
				defer func() {
					if r := recover(); r != nil {
						if _, ok := r.(crashSentinel); !ok {
							panic(r)
						}
					}
				}()
				return run.exec(op)
			}()
			if err != nil {
				return nil, fmt.Errorf("crash: op %d: %w", i, err)
			}
			if !fired {
				// The op never reached a commit (release/fault/rejected
				// admit): degrade to a post-op kill. State-changing ops
				// already logged their records, so nothing is lost.
				kill(cp)
			}
			if err := restore(i, cp); err != nil {
				return nil, err
			}
			audit()
			continue
		}
		if err := run.exec(op); err != nil {
			return nil, fmt.Errorf("crash: op %d: %w", i, err)
		}
		if cfg.CheckpointEvery > 0 && i > 0 && i%cfg.CheckpointEvery == 0 {
			if _, err := run.mgr.Checkpoint(); err != nil {
				return nil, fmt.Errorf("crash: checkpoint at op %d: %w", i, err)
			}
		}
	}
	log.Close()

	compareRuns(rep, oracle.mgr, run.mgr)
	validateFinal(rep, run.mgr)
	return rep, nil
}

// compareRuns diffs the two managers' committed state: sessions by
// embedding bytes, cost bits, degradation marks and usage lists, the
// refcount ledger, and the admission accounting. The rejected counter
// is deliberately excluded: rejections do not commit, so a crash may
// lose rejections recorded since the last snapshot without losing any
// committed state.
func compareRuns(rep *CrashReport, oracle, crashed *dynamic.Manager) {
	osess, csess := oracle.Sessions(), crashed.Sessions()
	byID := make(map[dynamic.SessionID]*dynamic.Session, len(csess))
	for _, s := range csess {
		byID[s.ID] = s
	}
	for _, want := range osess {
		got, ok := byID[want.ID]
		if !ok {
			rep.LostSessions = append(rep.LostSessions, int(want.ID))
			continue
		}
		delete(byID, want.ID)
		wantEmb, err1 := json.Marshal(want.Result.Embedding)
		gotEmb, err2 := json.Marshal(got.Result.Embedding)
		if err1 != nil || err2 != nil {
			rep.Mismatches = append(rep.Mismatches,
				fmt.Sprintf("session %d: encode: %v / %v", want.ID, err1, err2))
			continue
		}
		if string(wantEmb) != string(gotEmb) {
			rep.Mismatches = append(rep.Mismatches,
				fmt.Sprintf("session %d: embedding bytes diverged", want.ID))
		}
		if want.Result.FinalCost != got.Result.FinalCost {
			rep.Mismatches = append(rep.Mismatches,
				fmt.Sprintf("session %d: cost %v vs %v", want.ID, want.Result.FinalCost, got.Result.FinalCost))
		}
		if want.Degraded != got.Degraded || !equalInts(want.Lost, got.Lost) {
			rep.Mismatches = append(rep.Mismatches,
				fmt.Sprintf("session %d: degraded/lost %v%v vs %v%v",
					want.ID, want.Degraded, want.Lost, got.Degraded, got.Lost))
		}
	}
	for id := range byID {
		rep.Mismatches = append(rep.Mismatches, fmt.Sprintf("session %d: phantom (absent in oracle)", id))
	}
	sort.Strings(rep.Mismatches)

	orefs, crefs := oracle.Refs(), crashed.Refs()
	if len(orefs) != len(crefs) {
		rep.Mismatches = append(rep.Mismatches,
			fmt.Sprintf("refcount ledger size %d vs %d", len(orefs), len(crefs)))
	}
	for k, v := range orefs {
		if crefs[k] != v {
			rep.Mismatches = append(rep.Mismatches,
				fmt.Sprintf("refcount vnf=%d node=%d: %d vs %d", k[0], k[1], v, crefs[k]))
		}
	}
	ostats, cstats := oracle.Stats(), crashed.Stats()
	if ostats.Admitted != cstats.Admitted {
		rep.Mismatches = append(rep.Mismatches,
			fmt.Sprintf("admitted %d vs %d", ostats.Admitted, cstats.Admitted))
	}
	if ostats.AdmittedCost != cstats.AdmittedCost {
		rep.Mismatches = append(rep.Mismatches,
			fmt.Sprintf("admitted cost %v vs %v (must match to the bit)", ostats.AdmittedCost, cstats.AdmittedCost))
	}
	if ostats.Active != cstats.Active {
		rep.Mismatches = append(rep.Mismatches,
			fmt.Sprintf("active %d vs %d", ostats.Active, cstats.Active))
	}
}

// validateFinal runs the conformance validator and refcount
// conservation over the crashed run's final state.
func validateFinal(rep *CrashReport, m *dynamic.Manager) {
	net := m.Network()
	for _, sess := range m.Sessions() {
		if sess.Degraded {
			continue
		}
		if err := conformance.CheckLive(net, sess.Result.Embedding); err != nil {
			rep.ValidationErrors = append(rep.ValidationErrors,
				fmt.Sprintf("final: session %d: validate: %v", sess.ID, err))
		}
	}
	if err := m.VerifyRefs(); err != nil {
		rep.ValidationErrors = append(rep.ValidationErrors, fmt.Sprintf("final: %v", err))
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
