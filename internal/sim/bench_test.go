package sim

import (
	"math/rand"
	"testing"

	"sftree/internal/core"
	"sftree/internal/netgen"
)

func BenchmarkReplay250Nodes25Dests(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net, err := netgen.Generate(netgen.PaperConfig(250, 2), rng)
	if err != nil {
		b.Fatal(err)
	}
	task, err := netgen.GenerateTask(net, rng, 25, 10)
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.Solve(net, task, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Replay(net, res.Embedding); err != nil {
			b.Fatal(err)
		}
	}
}
