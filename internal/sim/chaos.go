// Chaos drives the failure-injection/recovery loop end to end: admit a
// population of multicast sessions on a generated network, replay a
// seeded fault schedule through the dynamic manager, and after every
// event re-verify each surviving session against the shared
// conformance validator and the flow-level replay. It is the engine behind `tools.sh chaos`
// and the resilience acceptance gate: after an arbitrary prefix of
// faults, every non-degraded session must still hold a valid,
// deliverable embedding.
package sim

import (
	"fmt"
	"math/rand"

	"sftree/internal/conformance"
	"sftree/internal/core"
	"sftree/internal/dynamic"
	"sftree/internal/faults"
	"sftree/internal/netgen"
)

// ChaosConfig parameterizes one chaos run. Everything is seeded, so a
// run is reproducible bit for bit.
type ChaosConfig struct {
	// Nodes sizes the generated network (paper topology, mu=2).
	Nodes int
	// Seed drives network generation, task sampling and (when
	// Schedule is nil) fault-schedule generation.
	Seed int64
	// Sessions is the target number of live sessions before faults.
	Sessions int
	// Faults is the generated schedule length; ignored when Schedule
	// is set.
	Faults int
	// Schedule, when non-nil, replays a pre-built scenario instead of
	// generating one.
	Schedule *faults.Schedule
}

// ChaosEvent records the repair outcome of one fault event.
type ChaosEvent struct {
	Event    string  `json:"event"`
	Affected int     `json:"affected"`
	Patched  int     `json:"patched"`
	Reembeds int     `json:"reembeds"`
	Degraded int     `json:"degraded"`
	Delta    float64 `json:"cost_delta"`
}

// ChaosReport is the outcome of a chaos run.
type ChaosReport struct {
	Nodes            int `json:"nodes"`
	Edges            int `json:"edges"`
	SessionsAdmitted int `json:"sessions_admitted"`
	EventsApplied    int `json:"events_applied"`
	Affected         int `json:"affected"`
	Patched          int `json:"patched"`
	Reembeds         int `json:"reembeds"`
	Degraded         int `json:"degraded"`
	// RepairsWithReuse counts successful repairs that leaned on at
	// least one surviving instance.
	RepairsWithReuse int     `json:"repairs_with_reuse"`
	CostDelta        float64 `json:"cost_delta"`
	// ValidationErrors lists every post-event check a non-degraded
	// session failed: conformance validator or flow-level replay.
	// Empty on a healthy run — the acceptance gate asserts exactly that.
	ValidationErrors []string     `json:"validation_errors,omitempty"`
	FinalLive        int          `json:"final_live"`
	FinalDegraded    int          `json:"final_degraded"`
	Events           []ChaosEvent `json:"events,omitempty"`
}

// RunChaos executes the full loop: generate, admit, break, repair,
// verify. It returns an error only on setup problems (bad config,
// generation failure); repair failures and validation violations are
// reported in the ChaosReport for the caller to judge.
func RunChaos(cfg ChaosConfig) (*ChaosReport, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 40
	}
	if cfg.Sessions <= 0 {
		cfg.Sessions = 30
	}
	if cfg.Faults <= 0 {
		cfg.Faults = 20
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	base, err := netgen.Generate(netgen.PaperConfig(cfg.Nodes, 2), rng)
	if err != nil {
		return nil, fmt.Errorf("chaos: generate network: %w", err)
	}
	rep := &ChaosReport{Nodes: base.NumNodes(), Edges: base.Graph().NumEdges()}

	mgr := dynamic.NewManager(base, core.Options{})
	for tries := 0; rep.SessionsAdmitted < cfg.Sessions && tries < cfg.Sessions*10; tries++ {
		task, err := netgen.GenerateTask(base, rng, 2+rng.Intn(3), 2+rng.Intn(2))
		if err != nil {
			return nil, fmt.Errorf("chaos: sample task: %w", err)
		}
		if _, err := mgr.Admit(task); err == nil {
			rep.SessionsAdmitted++
		}
	}
	if rep.SessionsAdmitted < cfg.Sessions {
		return nil, fmt.Errorf("chaos: admitted only %d of %d sessions", rep.SessionsAdmitted, cfg.Sessions)
	}

	sched := cfg.Schedule
	if sched == nil {
		if sched, err = faults.Generate(base, faults.DefaultGenConfig(cfg.Faults), rng); err != nil {
			return nil, fmt.Errorf("chaos: generate schedule: %w", err)
		}
		sched.Seed = cfg.Seed
	}

	replayer := faults.NewReplayer(base, sched)
	for !replayer.Done() {
		ev, degradedNet, err := replayer.Step(mgr.Network())
		if err != nil {
			return nil, fmt.Errorf("chaos: event %d (%v): %w", rep.EventsApplied, ev, err)
		}
		rr := mgr.Rebase(degradedNet)
		rep.EventsApplied++
		rep.Affected += rr.Affected
		rep.Patched += rr.Patched
		rep.Reembeds += rr.Reembeds
		rep.Degraded += rr.Degraded
		rep.CostDelta += rr.CostDelta
		for _, sr := range rr.Sessions {
			if (sr.Outcome == dynamic.RepairPatched || sr.Outcome == dynamic.RepairReembedded) &&
				sr.ReusedInstances > 0 {
				rep.RepairsWithReuse++
			}
		}
		rep.Events = append(rep.Events, ChaosEvent{
			Event:    ev.String(),
			Affected: rr.Affected,
			Patched:  rr.Patched,
			Reembeds: rr.Reembeds,
			Degraded: rr.Degraded,
			Delta:    rr.CostDelta,
		})

		// Invariant: every non-degraded session holds a valid,
		// deliverable embedding on the current network.
		net := mgr.Network()
		for _, sess := range mgr.Sessions() {
			if sess.Degraded {
				continue
			}
			emb := sess.Result.Embedding
			if err := conformance.CheckLive(net, emb); err != nil {
				rep.ValidationErrors = append(rep.ValidationErrors,
					fmt.Sprintf("event %d (%v): session %d: validate: %v", rep.EventsApplied, ev, sess.ID, err))
				continue
			}
			sim, err := Replay(net, emb)
			if err != nil {
				rep.ValidationErrors = append(rep.ValidationErrors,
					fmt.Sprintf("event %d (%v): session %d: replay: %v", rep.EventsApplied, ev, sess.ID, err))
				continue
			}
			if sim.Delivered != len(emb.Task.Destinations) {
				rep.ValidationErrors = append(rep.ValidationErrors,
					fmt.Sprintf("event %d (%v): session %d: delivered %d of %d",
						rep.EventsApplied, ev, sess.ID, sim.Delivered, len(emb.Task.Destinations)))
			}
		}
	}

	for _, sess := range mgr.Sessions() {
		rep.FinalLive++
		if sess.Degraded {
			rep.FinalDegraded++
		}
	}
	return rep, nil
}
