// Package sim replays an embedding as a flow-level multicast
// simulation: every destination's walk is traversed hop by hop, VNF
// processing is checked against the chain order, per-stage multicast
// deduplication is applied edge by edge, and the traffic delivery cost
// is re-derived from the observed transmissions. The replay shares no
// code with nfv.Cost/Validate, so agreement between the two is a
// strong end-to-end check; it also reports link-load statistics the
// cost oracle does not track.
package sim

import (
	"errors"
	"fmt"
	"sort"

	"sftree/internal/nfv"
)

// ErrReplay reports an embedding the simulator could not deliver.
var ErrReplay = errors.New("sim: replay failed")

// EdgeLoad describes the traffic observed on one physical edge.
type EdgeLoad struct {
	U, V   int     // canonical endpoints (U < V)
	Copies int     // distinct (stage, direction) flow copies carried
	Cost   float64 // link cost paid: Copies * edge cost
}

// InstanceLoad reports how many destinations one VNF instance served.
type InstanceLoad struct {
	VNF, Node int
	Flows     int // destinations processed
}

// Report is the outcome of a replay.
type Report struct {
	Delivered    int     // destinations that received the flow
	SetupCost    float64 // cost of new instances actually traversed
	LinkCost     float64 // sum over observed distinct (stage, arc) transmissions
	TotalCost    float64
	EdgeLoads    []EdgeLoad
	MaxEdgeLoad  int   // max Copies over all edges
	HopsPerDest  []int // physical hops each destination's flow travelled
	InstancesHit int   // distinct instances (new or deployed) that processed traffic

	// LatencyPerDest is the end-to-end path cost each destination's
	// flow accumulated (no multicast dedup: latency is per receiver).
	LatencyPerDest []float64
	// MaxLatency and MeanLatency summarize LatencyPerDest.
	MaxLatency, MeanLatency float64
	// InstanceLoads lists every traversed instance with its fan-out,
	// sorted by VNF then node.
	InstanceLoads []InstanceLoad
}

// Replay drives the embedding end to end. It fails with ErrReplay on
// any ordering, connectivity, or placement violation encountered
// mid-flight.
func Replay(net *nfv.Network, e *nfv.Embedding) (*Report, error) {
	task := e.Task
	k := task.K()
	if len(e.Walks) != len(task.Destinations) {
		return nil, fmt.Errorf("%w: %d walks for %d destinations", ErrReplay, len(e.Walks), len(task.Destinations))
	}
	newInst := make(map[[2]int]bool, len(e.NewInstances))
	for _, inst := range e.NewInstances {
		newInst[[2]int{inst.VNF, inst.Node}] = true
	}

	type stageArc struct{ stage, u, v int }
	transmitted := make(map[stageArc]float64)
	instancesHit := make(map[[2]int]int) // instance -> destinations served
	report := &Report{
		HopsPerDest:    make([]int, len(task.Destinations)),
		LatencyPerDest: make([]float64, len(task.Destinations)),
	}

	for di, d := range task.Destinations {
		walk := e.Walks[di]
		if len(walk) != k+1 {
			return nil, fmt.Errorf("%w: destination %d has %d stages, want %d", ErrReplay, d, len(walk), k+1)
		}
		at := task.Source
		processed := 0 // chain VNFs applied so far
		for _, seg := range walk {
			if seg.Level != processed {
				return nil, fmt.Errorf("%w: destination %d out-of-order stage %d (expected %d)",
					ErrReplay, d, seg.Level, processed)
			}
			if len(seg.Path) == 0 || seg.Path[0] != at {
				return nil, fmt.Errorf("%w: destination %d stage %d does not start at %d",
					ErrReplay, d, seg.Level, at)
			}
			for i := 1; i < len(seg.Path); i++ {
				u, v := seg.Path[i-1], seg.Path[i]
				cost, ok := net.Graph().HasEdge(u, v)
				if !ok {
					return nil, fmt.Errorf("%w: destination %d hops over non-edge %d-%d", ErrReplay, d, u, v)
				}
				transmitted[stageArc{stage: seg.Level, u: u, v: v}] = cost
				report.HopsPerDest[di]++
				report.LatencyPerDest[di] += cost
				at = v
			}
			at = seg.Path[len(seg.Path)-1]
			// Leaving this stage means the next chain VNF processes the
			// flow at the segment's terminal node (except the last stage,
			// which terminates at the destination).
			if seg.Level < k {
				f := task.Chain[seg.Level]
				if !net.IsDeployed(f, at) && !newInst[[2]int{f, at}] {
					return nil, fmt.Errorf("%w: destination %d expects VNF %d at node %d but no instance is there",
						ErrReplay, d, f, at)
				}
				instancesHit[[2]int{f, at}]++
				processed++
			}
		}
		if at != d {
			return nil, fmt.Errorf("%w: flow for destination %d terminated at %d", ErrReplay, d, at)
		}
		if processed != k {
			return nil, fmt.Errorf("%w: destination %d processed %d of %d VNFs", ErrReplay, d, processed, k)
		}
		report.Delivered++
	}

	// Setup cost: only new instances that actually processed traffic.
	countedInst := make(map[[2]int]bool)
	for key := range instancesHit {
		if newInst[key] && !countedInst[key] {
			countedInst[key] = true
			report.SetupCost += net.SetupCost(key[0], key[1])
		}
	}
	report.InstancesHit = len(instancesHit)
	for key, flows := range instancesHit {
		report.InstanceLoads = append(report.InstanceLoads, InstanceLoad{
			VNF: key[0], Node: key[1], Flows: flows,
		})
	}
	sort.Slice(report.InstanceLoads, func(a, b int) bool {
		la, lb := report.InstanceLoads[a], report.InstanceLoads[b]
		if la.VNF != lb.VNF {
			return la.VNF < lb.VNF
		}
		return la.Node < lb.Node
	})
	for _, lat := range report.LatencyPerDest {
		report.MeanLatency += lat
		if lat > report.MaxLatency {
			report.MaxLatency = lat
		}
	}
	if len(report.LatencyPerDest) > 0 {
		report.MeanLatency /= float64(len(report.LatencyPerDest))
	}

	// Link cost and per-edge loads from observed transmissions.
	type canonEdge struct{ u, v int }
	loads := make(map[canonEdge]*EdgeLoad)
	for arc, cost := range transmitted {
		report.LinkCost += cost
		u, v := arc.u, arc.v
		if u > v {
			u, v = v, u
		}
		key := canonEdge{u: u, v: v}
		ld, ok := loads[key]
		if !ok {
			ld = &EdgeLoad{U: u, V: v}
			loads[key] = ld
		}
		ld.Copies++
		ld.Cost += cost
	}
	for _, ld := range loads {
		report.EdgeLoads = append(report.EdgeLoads, *ld)
		if ld.Copies > report.MaxEdgeLoad {
			report.MaxEdgeLoad = ld.Copies
		}
	}
	report.TotalCost = report.SetupCost + report.LinkCost
	return report, nil
}
