package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"sftree/internal/core"
	"sftree/internal/netgen"
	"sftree/internal/nfv"
)

// solverFn runs one named algorithm variant on an instance.
type solverFn func(net *nfv.Network, task nfv.Task) (float64, error)

// runVariants sweeps network sizes and runs each named variant on the
// same instances, producing a Figure with one column per variant.
func runVariants(id, title string, sizes []int, numDestOf func(n int) int, chainLen int, variants map[string]solverFn, order []string, cfg Config) (*Figure, error) {
	cfg = cfg.normalized()
	fig := &Figure{ID: id, Title: title, XLabel: "|V|", AlgOrder: order}
	for _, n := range sizes {
		row := Row{X: float64(n), Algos: map[string]*Stat{}}
		for _, name := range order {
			row.Algos[name] = &Stat{}
		}
		for trial := 0; trial < cfg.Trials; trial++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(n)*101 + int64(trial)))
			net, err := netgen.Generate(netgen.PaperConfig(n, 2), rng)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", id, err)
			}
			task, err := netgen.GenerateTask(net, rng, numDestOf(n), chainLen)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", id, err)
			}
			net.Metric()
			for _, name := range order {
				start := time.Now()
				cost, err := variants[name](net, task)
				elapsed := time.Since(start)
				if err != nil {
					return nil, fmt.Errorf("%s %s: %w", id, name, err)
				}
				row.Algos[name].Cost.Add(cost)
				row.Algos[name].TimeMS.AddDuration(elapsed)
			}
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig, nil
}

func solveWith(opts core.Options) solverFn {
	return func(net *nfv.Network, task nfv.Task) (float64, error) {
		res, err := core.Solve(net, task, opts)
		if err != nil {
			return 0, err
		}
		return res.FinalCost, nil
	}
}

// AblationSteiner compares the stage-one Steiner routine: KMB (the
// paper's choice via [3]) against Takahashi-Matsuyama.
func AblationSteiner(cfg Config) (*Figure, error) {
	return runVariants("ablation-steiner", "Stage-one Steiner routine: KMB vs Takahashi-Matsuyama vs Mehlhorn",
		[]int{50, 100, 150}, func(n int) int { return n / 5 }, 5,
		map[string]solverFn{
			"MSA-KMB":      solveWith(core.Options{Steiner: core.SteinerKMB}),
			"MSA-TM":       solveWith(core.Options{Steiner: core.SteinerTM}),
			"MSA-Mehlhorn": solveWith(core.Options{Steiner: core.SteinerMehlhorn}),
		},
		[]string{"MSA-KMB", "MSA-TM", "MSA-Mehlhorn"}, cfg)
}

// AblationLastHost compares sweeping every candidate last-VNF host
// (Algorithm 2's loop) against greedy truncations.
func AblationLastHost(cfg Config) (*Figure, error) {
	return runVariants("ablation-lasthost", "Stage-one candidate hosts: all vs top-K by chain cost",
		[]int{50, 100, 150}, func(n int) int { return n / 5 }, 5,
		map[string]solverFn{
			"AllHosts": solveWith(core.Options{}),
			"Top5":     solveWith(core.Options{MaxCandidateHosts: 5}),
			"Top1":     solveWith(core.Options{MaxCandidateHosts: 1}),
		},
		[]string{"AllHosts", "Top5", "Top1"}, cfg)
}

// AblationOPA compares stage-two acceptance rules: recomputed global
// cost (this implementation's default), the paper's raw local rule,
// and no stage two at all.
func AblationOPA(cfg Config) (*Figure, error) {
	stageOne := func(net *nfv.Network, task nfv.Task) (float64, error) {
		res, err := core.SolveStageOne(net, task, core.Options{})
		if err != nil {
			return 0, err
		}
		return res.FinalCost, nil
	}
	return runVariants("ablation-opa", "Stage-two acceptance: global recompute vs local rule vs none",
		[]int{50, 100, 150}, func(n int) int { return n / 5 }, 5,
		map[string]solverFn{
			"GlobalAccept": solveWith(core.Options{}),
			"LocalAccept":  solveWith(core.Options{LocalAcceptance: true}),
			"StageOneOnly": stageOne,
		},
		[]string{"GlobalAccept", "LocalAccept", "StageOneOnly"}, cfg)
}

// AblationAPSP compares the all-pairs shortest-path backends feeding
// every algorithm: Floyd-Warshall (dense, the default) vs repeated
// Dijkstra (sparse-friendly). Cost column holds the (identical)
// distance-matrix checksum so divergence would be visible.
func AblationAPSP(cfg Config) (*Figure, error) {
	cfg = cfg.normalized()
	fig := &Figure{
		ID:       "ablation-apsp",
		Title:    "APSP backend: Floyd-Warshall vs repeated Dijkstra",
		XLabel:   "|V|",
		AlgOrder: []string{"FloydWarshall", "AllDijkstra"},
	}
	for _, n := range []int{50, 100, 200} {
		row := Row{X: float64(n), Algos: map[string]*Stat{
			"FloydWarshall": {}, "AllDijkstra": {},
		}}
		for trial := 0; trial < cfg.Trials; trial++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(n) + int64(trial)*17))
			net, err := netgen.Generate(netgen.PaperConfig(n, 2), rng)
			if err != nil {
				return nil, err
			}
			g := net.Graph()

			start := time.Now()
			fw := g.FloydWarshall()
			row.Algos["FloydWarshall"].TimeMS.AddDuration(time.Since(start))
			row.Algos["FloydWarshall"].Cost.Add(checksum(fw.Dist))

			start = time.Now()
			ad := g.AllDijkstra()
			row.Algos["AllDijkstra"].TimeMS.AddDuration(time.Since(start))
			row.Algos["AllDijkstra"].Cost.Add(checksum(ad.Dist))
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig, nil
}

func checksum(dist [][]float64) float64 {
	var sum float64
	for _, row := range dist {
		for _, d := range row {
			sum += d
		}
	}
	return sum
}

// Ablations runs every ablation in order.
func Ablations(cfg Config) ([]*Figure, error) {
	runs := []func(Config) (*Figure, error){AblationSteiner, AblationLastHost, AblationOPA, AblationAPSP}
	out := make([]*Figure, 0, len(runs))
	for _, run := range runs {
		fig, err := run(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, fig)
	}
	return out, nil
}
