package experiments

import (
	"strings"
	"testing"
)

// smallCfg keeps experiment tests fast: one trial, fixed seed.
var smallCfg = Config{Trials: 1, Seed: 7}

func checkFigure(t *testing.T, fig *Figure, wantRows int) {
	t.Helper()
	if len(fig.Rows) != wantRows {
		t.Fatalf("%s: %d rows, want %d", fig.ID, len(fig.Rows), wantRows)
	}
	for _, row := range fig.Rows {
		for _, algo := range fig.AlgOrder {
			st, ok := row.Algos[algo]
			if !ok {
				t.Fatalf("%s x=%v: missing algo %s", fig.ID, row.X, algo)
			}
			if st.Cost.N() == 0 {
				t.Fatalf("%s x=%v %s: no cost observations", fig.ID, row.X, algo)
			}
			if st.Cost.Mean() <= 0 {
				t.Fatalf("%s x=%v %s: non-positive mean cost %v", fig.ID, row.X, algo, st.Cost.Mean())
			}
		}
	}
}

func TestFig8SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	fig, err := Fig8(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 5)
	// Cost grows with network size (paper's observation).
	first := fig.Rows[0].Algos[AlgoMSA].Cost.Mean()
	last := fig.Rows[len(fig.Rows)-1].Algos[AlgoMSA].Cost.Mean()
	if last <= first {
		t.Errorf("MSA cost did not grow with |V|: %v -> %v", first, last)
	}
}

func TestFig13PalmettoWithReference(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	cfg := smallCfg
	cfg.WithReference = true
	fig, err := Fig13(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 5)
	for _, row := range fig.Rows {
		opt := row.Algos[AlgoOPT].Cost.Mean()
		msa := row.Algos[AlgoMSA].Cost.Mean()
		if opt > msa+1e-6 {
			t.Errorf("|D|=%v: OPT* %v above MSA %v", row.X, opt, msa)
		}
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	fig, err := Fig10(Config{Trials: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cost := fig.CostTable()
	if !strings.Contains(cost, "FIG10") || !strings.Contains(cost, AlgoMSA) {
		t.Errorf("cost table malformed:\n%s", cost)
	}
	timeTab := fig.TimeTable()
	if !strings.Contains(timeTab, "running time") {
		t.Errorf("time table malformed:\n%s", timeTab)
	}
	csv := fig.CSV()
	if !strings.HasPrefix(csv, "figure,x,algorithm") {
		t.Errorf("csv header malformed:\n%s", csv)
	}
	wantLines := 1 + len(fig.Rows)*len(fig.AlgOrder)
	if got := strings.Count(csv, "\n"); got != wantLines {
		t.Errorf("csv lines = %d, want %d", got, wantLines)
	}
	if sum := fig.Summary(); !strings.Contains(sum, "MSA vs RSA") {
		t.Errorf("summary malformed: %s", sum)
	}
}

func TestParallelTrialsMatchSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	seq, err := Fig10(Config{Trials: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fig10(Config{Trials: 3, Seed: 9, Parallel: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.Rows {
		for _, algo := range seq.AlgOrder {
			a := seq.Rows[i].Algos[algo].Cost.Mean()
			b := par.Rows[i].Algos[algo].Cost.Mean()
			if a != b {
				t.Fatalf("row %d %s: sequential %v != parallel %v", i, algo, a, b)
			}
		}
	}
}

func TestGapStudyILPNeverAboveHeuristics(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	fig, err := GapStudy(Config{Trials: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range fig.Rows {
		ilpCost := row.Algos[AlgoILP].Cost.Mean()
		for _, algo := range []string{AlgoMSA, AlgoSCA, AlgoRSA} {
			st := row.Algos[algo]
			if st.Cost.N() == 0 {
				continue
			}
			// Compare per-point means; the ILP column is a proven optimum
			// on exactly the instances the heuristics ran on.
			if algo == AlgoMSA && st.Cost.Mean() < ilpCost-1e-6 {
				t.Errorf("|V|=%v: MSA %v below proven optimum %v", row.X, st.Cost.Mean(), ilpCost)
			}
		}
	}
}

func TestCostChart(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	fig, err := TraceStudy(Config{Trials: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	chart := fig.CostChart()
	if !strings.Contains(chart, "#") {
		t.Errorf("chart has no bars:\n%s", chart)
	}
	if !strings.Contains(chart, ColAcceptance) {
		t.Errorf("chart missing series label:\n%s", chart)
	}
	// Empty figure: graceful output.
	empty := &Figure{ID: "x", Title: "t", XLabel: "x", AlgOrder: []string{"A"}}
	if got := empty.CostChart(); !strings.Contains(got, "(no data)") {
		t.Errorf("empty chart = %q", got)
	}
	if sum := empty.Summary(); !strings.Contains(sum, "no MSA-relative series") {
		t.Errorf("empty summary = %q", sum)
	}
}

func TestRatioStudySmall(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	fig, err := RatioStudy(Config{Trials: 1, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 4 {
		t.Fatalf("rows = %d", len(fig.Rows))
	}
	for _, row := range fig.Rows {
		msa := row.Algos[AlgoMSA].Cost.Mean()
		opt := row.Algos[AlgoOPT].Cost.Mean()
		if opt > msa+1e-6 {
			t.Errorf("capacity %v: OPT* %v above MSA %v", row.X, opt, msa)
		}
	}
}

func TestBranchStudySmall(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	fig, err := BranchStudy(Config{Trials: 1, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range fig.Rows {
		stage1 := row.Algos[ColRSAStage1].Cost.Mean()
		paper := row.Algos[ColRSAPaperOPA].Cost.Mean()
		aggro := row.Algos[ColRSAAggro].Cost.Mean()
		if paper > stage1+1e-6 {
			t.Errorf("density %v: paper OPA above its own stage one", row.X)
		}
		if aggro > paper+1e-6 {
			t.Errorf("density %v: aggressive OPA (%v) worse than paper OPA (%v)", row.X, aggro, paper)
		}
	}
}

func TestByID(t *testing.T) {
	for _, id := range []string{"8", "9", "10", "11", "12", "13", "14", "fig8", "fig14", "gap", "trace", "ratio"} {
		if _, ok := ByID(id); !ok {
			t.Errorf("ByID(%q) not found", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID accepted garbage")
	}
}

func TestAblationOPAOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	fig, err := AblationOPA(Config{Trials: 1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range fig.Rows {
		global := row.Algos["GlobalAccept"].Cost.Mean()
		stage1 := row.Algos["StageOneOnly"].Cost.Mean()
		if global > stage1+1e-6 {
			t.Errorf("|V|=%v: stage two increased cost %v -> %v", row.X, stage1, global)
		}
	}
}

func TestAblationAPSPAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	fig, err := AblationAPSP(Config{Trials: 1, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range fig.Rows {
		fw := row.Algos["FloydWarshall"].Cost.Mean()
		ad := row.Algos["AllDijkstra"].Cost.Mean()
		if fw != ad {
			t.Errorf("|V|=%v: distance checksums differ: %v vs %v", row.X, fw, ad)
		}
	}
}
