package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"sftree/internal/core"
	"sftree/internal/exact"
	"sftree/internal/netgen"
	"sftree/internal/topology"
)

// RatioStudy probes Theorem 6's "sufficient resources" condition
// empirically: on PalmettoNet with k=5 and |D|=8, sweep the uniform
// node capacity from starved (1 instance per node) to ample (5) and
// measure the two-stage cost against the best-known reference. The
// theorem's 1+rho guarantee only holds with sufficient capacity;
// starved networks force the repair step into detours, so the ratio
// should drift up as capacity shrinks — this study quantifies by how
// much.
func RatioStudy(cfg Config) (*Figure, error) {
	cfg = cfg.normalized()
	fig := &Figure{
		ID:       "ratiostudy",
		Title:    "Approximation ratio vs node capacity (PalmettoNet, k=5, |D|=8)",
		XLabel:   "capacity",
		AlgOrder: []string{AlgoMSA, AlgoOPT},
	}
	for _, capacity := range []int{1, 2, 3, 5} {
		row := Row{X: float64(capacity), Algos: map[string]*Stat{
			AlgoMSA: {}, AlgoOPT: {},
		}}
		solved := 0
		for trial := 0; solved < cfg.Trials && trial < 4*cfg.Trials; trial++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(capacity)*1009 + int64(trial)))
			g, coords, _ := topology.Palmetto()
			gen := netgen.PaperConfig(g.NumNodes(), 2)
			gen.CapacityMin, gen.CapacityMax = capacity, capacity
			net, err := netgen.Materialize(g, coords, gen, rng)
			if err != nil {
				return nil, fmt.Errorf("ratiostudy: %w", err)
			}
			task, err := netgen.GenerateTask(net, rng, 8, 5)
			if err != nil {
				return nil, fmt.Errorf("ratiostudy: %w", err)
			}
			start := time.Now()
			msa, err := core.Solve(net, task, core.Options{})
			if err != nil {
				continue // starved instances can be infeasible; resample
			}
			msaTime := time.Since(start)
			start = time.Now()
			ref, err := exact.BestKnown(net, task)
			if err != nil {
				continue
			}
			solved++
			row.Algos[AlgoMSA].Cost.Add(msa.FinalCost)
			row.Algos[AlgoMSA].TimeMS.AddDuration(msaTime)
			row.Algos[AlgoOPT].Cost.Add(ref.FinalCost)
			row.Algos[AlgoOPT].TimeMS.AddDuration(time.Since(start))
		}
		if solved == 0 {
			return nil, fmt.Errorf("ratiostudy: no feasible instance at capacity %d", capacity)
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig, nil
}
