package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"sftree/internal/baseline"
	"sftree/internal/core"
	"sftree/internal/netgen"
)

// Branch-study column names.
const (
	ColRSAStage1    = "RSA-Stage1"
	ColRSAPaperOPA  = "RSA+OPA"
	ColRSAAggro     = "RSA+AggroOPA"
	ColMSAReference = "MSA"
)

// BranchStudy characterizes when stage two's tree-branching actually
// fires. Finding (reproduced by this experiment): after MSA's full
// candidate-host sweep there is nothing left for OPA to improve on
// Table-I-style instances (MSA sits within ~1% of the best-known
// reference), so the branching phase earns its keep on *weak* starting
// points. The study therefore measures, on clustered-receiver
// instances with dense pre-deployments, the random baseline's
// stage-one cost and what (a) the paper's OPA and (b) this
// repository's aggressive OPA extension (dependent paths kept, global
// acceptance) recover from it, with MSA as the reference line.
func BranchStudy(cfg Config) (*Figure, error) {
	cfg = cfg.normalized()
	fig := &Figure{
		ID:       "branchstudy",
		Title:    "Stage-two recovery from weak starts (clustered receivers)",
		XLabel:   "deployed/|V|",
		AlgOrder: []string{ColRSAStage1, ColRSAPaperOPA, ColRSAAggro, ColMSAReference},
	}
	const nodes = 100
	for _, density := range []int{1, 2, 4} {
		row := Row{X: float64(density), Algos: map[string]*Stat{
			ColRSAStage1: {}, ColRSAPaperOPA: {}, ColRSAAggro: {}, ColMSAReference: {},
		}}
		for trial := 0; trial < cfg.Trials; trial++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(density)*3571 + int64(trial)))
			gen := netgen.PaperConfig(nodes, 2)
			gen.DeployedInstances = density * nodes
			net, err := netgen.Generate(gen, rng)
			if err != nil {
				return nil, fmt.Errorf("branchstudy: %w", err)
			}
			task, err := netgen.GenerateClusteredTask(net, rng, 3, 4, 5)
			if err != nil {
				return nil, fmt.Errorf("branchstudy: %w", err)
			}
			// Identical RSA randomness for both OPA variants.
			rsaSeed := cfg.Seed*97 + int64(trial)
			start := time.Now()
			paper, err := baseline.RSA(net, task, rand.New(rand.NewSource(rsaSeed)),
				core.Options{MaxOPAPasses: 3})
			if err != nil {
				return nil, fmt.Errorf("branchstudy: %w", err)
			}
			paperTime := time.Since(start)
			start = time.Now()
			aggro, err := baseline.RSA(net, task, rand.New(rand.NewSource(rsaSeed)),
				core.Options{MaxOPAPasses: 3, AggressiveOPA: true})
			if err != nil {
				return nil, fmt.Errorf("branchstudy: %w", err)
			}
			aggroTime := time.Since(start)
			if aggro.Stage1Cost != paper.Stage1Cost {
				return nil, fmt.Errorf("branchstudy: RSA stage-one diverged across OPA variants")
			}
			msa, err := core.Solve(net, task, core.Options{})
			if err != nil {
				return nil, fmt.Errorf("branchstudy: %w", err)
			}
			row.Algos[ColRSAStage1].Cost.Add(paper.Stage1Cost)
			row.Algos[ColRSAPaperOPA].Cost.Add(paper.FinalCost)
			row.Algos[ColRSAPaperOPA].TimeMS.AddDuration(paperTime)
			row.Algos[ColRSAAggro].Cost.Add(aggro.FinalCost)
			row.Algos[ColRSAAggro].TimeMS.AddDuration(aggroTime)
			row.Algos[ColMSAReference].Cost.Add(msa.FinalCost)
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig, nil
}
