// Package experiments defines and runs the paper's evaluation (§V):
// one experiment per figure, each a sweep over an x-axis parameter
// with several seeded trials per point, measuring the traffic delivery
// cost and running time of MSA (the two-stage algorithm), the SCA and
// RSA baselines, and — on the PalmettoNet figures — the best-known
// optimality reference that stands in for the paper's CPLEX runs.
package experiments

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"sftree/internal/baseline"
	"sftree/internal/core"
	"sftree/internal/exact"
	"sftree/internal/metrics"
	"sftree/internal/netgen"
	"sftree/internal/nfv"
	"sftree/internal/topology"
)

// Algorithm names used as stable keys in rows and tables.
const (
	AlgoMSA = "MSA"
	AlgoSCA = "SCA"
	AlgoRSA = "RSA"
	AlgoOPT = "OPT*" // best-known reference (see DESIGN.md substitutions)
)

// Config tunes a run without changing the experiment's shape.
type Config struct {
	// Trials per point (default 5).
	Trials int
	// Seed drives all randomness (default 1).
	Seed int64
	// WithReference enables the OPT* reference on figures that have it
	// (13, 14). It is expensive; benches usually disable it.
	WithReference bool
	// Parallel runs up to this many trials concurrently per point
	// (default 1). Results are deterministic regardless: every trial
	// derives its own seeded generator, and aggregation happens in
	// trial order after all workers finish. Wall-clock timings of
	// individual algorithms become noisier under parallelism, so the
	// paper-style timing figures should keep Parallel at 1.
	Parallel int
}

func (c Config) normalized() Config {
	if c.Trials <= 0 {
		c.Trials = 5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Parallel <= 0 {
		c.Parallel = 1
	}
	return c
}

// Stat aggregates one algorithm's measurements at one point.
type Stat struct {
	Cost   metrics.Sample
	TimeMS metrics.Sample
}

// Row is one x-axis point of a figure.
type Row struct {
	X     float64          // x-axis value
	Algos map[string]*Stat // per-algorithm aggregates
}

// Figure is a completed experiment.
type Figure struct {
	ID       string
	Title    string
	XLabel   string
	AlgOrder []string
	Rows     []Row
}

// point describes one sweep point of a figure.
type point struct {
	x        float64
	palmetto bool
	nodes    int
	numDest  int
	chainLen int
	mu       float64
	withOPT  bool
}

// measurement is one algorithm's outcome in one trial.
type measurement struct {
	cost float64
	dur  time.Duration
}

// runTrial executes every algorithm on one freshly generated instance.
func runTrial(pt point, cfg Config, trial int) (map[string]measurement, error) {
	// One deterministic stream per (seed, point, trial).
	rng := rand.New(rand.NewSource(cfg.Seed + int64(trial)*1_000_003 + int64(pt.x*7919) + int64(pt.nodes)))
	var (
		net *nfv.Network
		err error
	)
	if pt.palmetto {
		g, coords, _ := topology.Palmetto()
		net, err = netgen.Materialize(g, coords, netgen.PaperConfig(g.NumNodes(), pt.mu), rng)
	} else {
		net, err = netgen.Generate(netgen.PaperConfig(pt.nodes, pt.mu), rng)
	}
	if err != nil {
		return nil, fmt.Errorf("experiments: generate: %w", err)
	}
	task, err := netgen.GenerateTask(net, rng, pt.numDest, pt.chainLen)
	if err != nil {
		return nil, fmt.Errorf("experiments: task: %w", err)
	}
	net.Metric() // warm the APSP cache so timings compare algorithms, not Floyd-Warshall

	out := make(map[string]measurement, 4)

	start := time.Now()
	msa, err := core.Solve(net, task, core.Options{})
	if err != nil {
		return nil, fmt.Errorf("experiments: MSA: %w", err)
	}
	out[AlgoMSA] = measurement{cost: msa.FinalCost, dur: time.Since(start)}

	start = time.Now()
	sca, err := baseline.SCA(net, task, core.Options{})
	if err != nil {
		return nil, fmt.Errorf("experiments: SCA: %w", err)
	}
	out[AlgoSCA] = measurement{cost: sca.FinalCost, dur: time.Since(start)}

	rsaRng := rand.New(rand.NewSource(cfg.Seed*31 + int64(trial)))
	start = time.Now()
	rsa, err := baseline.RSA(net, task, rsaRng, core.Options{})
	if err != nil {
		return nil, fmt.Errorf("experiments: RSA: %w", err)
	}
	out[AlgoRSA] = measurement{cost: rsa.FinalCost, dur: time.Since(start)}

	if pt.withOPT {
		start = time.Now()
		opt, err := exact.BestKnown(net, task)
		if err != nil {
			return nil, fmt.Errorf("experiments: OPT*: %w", err)
		}
		out[AlgoOPT] = measurement{cost: opt.FinalCost, dur: time.Since(start)}
	}
	return out, nil
}

// runPoint executes all trials of one point, optionally in parallel,
// and aggregates measurements in trial order so statistics stay
// bit-for-bit deterministic.
func runPoint(pt point, cfg Config) (Row, error) {
	row := Row{X: pt.x, Algos: map[string]*Stat{
		AlgoMSA: {}, AlgoSCA: {}, AlgoRSA: {},
	}}
	if pt.withOPT {
		row.Algos[AlgoOPT] = &Stat{}
	}

	results := make([]map[string]measurement, cfg.Trials)
	errs := make([]error, cfg.Trials)
	if cfg.Parallel <= 1 {
		for trial := 0; trial < cfg.Trials; trial++ {
			results[trial], errs[trial] = runTrial(pt, cfg, trial)
		}
	} else {
		var wg sync.WaitGroup
		sem := make(chan struct{}, cfg.Parallel)
		for trial := 0; trial < cfg.Trials; trial++ {
			wg.Add(1)
			go func(trial int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				results[trial], errs[trial] = runTrial(pt, cfg, trial)
			}(trial)
		}
		wg.Wait()
	}
	for trial := 0; trial < cfg.Trials; trial++ {
		if errs[trial] != nil {
			return row, errs[trial]
		}
		for algo, m := range results[trial] {
			row.Algos[algo].Cost.Add(m.cost)
			row.Algos[algo].TimeMS.AddDuration(m.dur)
		}
	}
	return row, nil
}

func runFigure(id, title, xlabel string, pts []point, cfg Config) (*Figure, error) {
	cfg = cfg.normalized()
	fig := &Figure{
		ID:       id,
		Title:    title,
		XLabel:   xlabel,
		AlgOrder: []string{AlgoMSA, AlgoSCA, AlgoRSA},
	}
	if len(pts) > 0 && pts[0].withOPT {
		fig.AlgOrder = append(fig.AlgOrder, AlgoOPT)
	}
	for _, pt := range pts {
		row, err := runPoint(pt, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s (x=%v): %w", id, pt.x, err)
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig, nil
}

// networkSizes is the paper's x-axis for Figs. 8-11.
var networkSizes = []int{50, 100, 150, 200, 250}

// chainLengths is the paper's x-axis for Figs. 12 and 14.
var chainLengths = []int{5, 10, 15, 20, 25}

// Fig8 sweeps network size with destination ratio |D|/|V| = 0.1
// (SFC length 5, mu = 2).
func Fig8(cfg Config) (*Figure, error) {
	var pts []point
	for _, n := range networkSizes {
		pts = append(pts, point{x: float64(n), nodes: n, numDest: n / 10, chainLen: 5, mu: 2})
	}
	return runFigure("fig8", "Cost & time vs network size, |D|/|V|=0.1", "|V|", pts, cfg)
}

// Fig9 sweeps network size with destination ratio 0.3.
func Fig9(cfg Config) (*Figure, error) {
	var pts []point
	for _, n := range networkSizes {
		pts = append(pts, point{x: float64(n), nodes: n, numDest: 3 * n / 10, chainLen: 5, mu: 2})
	}
	return runFigure("fig9", "Cost & time vs network size, |D|/|V|=0.3", "|V|", pts, cfg)
}

// Fig10 sweeps network size with average setup cost 1x the average
// shortest-path cost (|D|/|V| = 0.2, SFC length 5).
func Fig10(cfg Config) (*Figure, error) {
	var pts []point
	for _, n := range networkSizes {
		pts = append(pts, point{x: float64(n), nodes: n, numDest: n / 5, chainLen: 5, mu: 1})
	}
	return runFigure("fig10", "Cost & time vs network size, setup cost 1x lbar", "|V|", pts, cfg)
}

// Fig11 repeats Fig10 with setup cost 3x the average shortest path.
func Fig11(cfg Config) (*Figure, error) {
	var pts []point
	for _, n := range networkSizes {
		pts = append(pts, point{x: float64(n), nodes: n, numDest: n / 5, chainLen: 5, mu: 3})
	}
	return runFigure("fig11", "Cost & time vs network size, setup cost 3x lbar", "|V|", pts, cfg)
}

// Fig12 sweeps SFC length on |V|=200, |D|/|V|=0.2, mu=3.
func Fig12(cfg Config) (*Figure, error) {
	var pts []point
	for _, k := range chainLengths {
		pts = append(pts, point{x: float64(k), nodes: 200, numDest: 40, chainLen: k, mu: 3})
	}
	return runFigure("fig12", "Cost & time vs SFC length, |V|=200", "SFC length", pts, cfg)
}

// Fig13 sweeps the number of destinations on PalmettoNet (k=10, mu=2),
// optionally with the best-known optimality reference.
func Fig13(cfg Config) (*Figure, error) {
	cfg = cfg.normalized()
	var pts []point
	for _, d := range []int{5, 10, 15, 20, 25} {
		pts = append(pts, point{x: float64(d), palmetto: true, numDest: d, chainLen: 10, mu: 2, withOPT: cfg.WithReference})
	}
	return runFigure("fig13", "PalmettoNet: cost & time vs |D| (k=10)", "|D|", pts, cfg)
}

// Fig14 sweeps SFC length on PalmettoNet (|D|=15, mu=2).
func Fig14(cfg Config) (*Figure, error) {
	cfg = cfg.normalized()
	var pts []point
	for _, k := range chainLengths {
		pts = append(pts, point{x: float64(k), palmetto: true, numDest: 15, chainLen: k, mu: 2, withOPT: cfg.WithReference})
	}
	return runFigure("fig14", "PalmettoNet: cost & time vs SFC length (|D|=15)", "SFC length", pts, cfg)
}

// All runs every figure in order.
func All(cfg Config) ([]*Figure, error) {
	runs := []func(Config) (*Figure, error){Fig8, Fig9, Fig10, Fig11, Fig12, Fig13, Fig14}
	out := make([]*Figure, 0, len(runs))
	for _, run := range runs {
		fig, err := run(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, fig)
	}
	return out, nil
}

// ByID resolves a figure runner by its short identifier ("8".."14" or
// "fig8".."fig14").
func ByID(id string) (func(Config) (*Figure, error), bool) {
	switch id {
	case "8", "fig8":
		return Fig8, true
	case "9", "fig9":
		return Fig9, true
	case "10", "fig10":
		return Fig10, true
	case "11", "fig11":
		return Fig11, true
	case "12", "fig12":
		return Fig12, true
	case "13", "fig13":
		return Fig13, true
	case "14", "fig14":
		return Fig14, true
	case "gap", "gapstudy":
		return GapStudy, true
	case "trace", "tracestudy":
		return TraceStudy, true
	case "ratio", "ratiostudy":
		return RatioStudy, true
	case "branch", "branchstudy":
		return BranchStudy, true
	default:
		return nil, false
	}
}
