package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"sftree/internal/baseline"
	"sftree/internal/core"
	"sftree/internal/graph"
	"sftree/internal/ilp"
	"sftree/internal/nfv"
	"sftree/internal/sftilp"
)

// AlgoILP labels the exact branch-and-bound column of the gap study.
const AlgoILP = "ILP"

// GapStudy compares the heuristics against *proven* ILP optima on tiny
// instances — the regime where the built-in solver replaces CPLEX
// exactly rather than by reference. It is this repository's analogue
// of the paper's Fig. 13 optimality comparison, restricted to sizes
// the dense simplex handles. Instances that exhaust the node budget
// before proving optimality are skipped (and logged in the row count).
func GapStudy(cfg Config) (*Figure, error) {
	cfg = cfg.normalized()
	fig := &Figure{
		ID:       "gapstudy",
		Title:    "Proven ILP optima vs heuristics on tiny instances",
		XLabel:   "|V|",
		AlgOrder: []string{AlgoMSA, AlgoSCA, AlgoRSA, AlgoILP},
	}
	for _, n := range []int{4, 5, 6} {
		row := Row{X: float64(n), Algos: map[string]*Stat{
			AlgoMSA: {}, AlgoSCA: {}, AlgoRSA: {}, AlgoILP: {},
		}}
		solved := 0
		for attempt := 0; solved < cfg.Trials && attempt < 10*cfg.Trials; attempt++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(n)*7919 + int64(attempt)))
			net, task := tinyInstance(rng, n)

			msa, err := core.Solve(net, task, core.Options{})
			if err != nil {
				continue
			}
			start := time.Now()
			exactRes, err := sftilp.SolveExact(net, task, ilp.Options{
				MaxNodes:     20000,
				Incumbent:    msa.FinalCost + 1e-6,
				HasIncumbent: true,
			})
			ilpTime := time.Since(start)
			if err != nil || exactRes.Status != ilp.Optimal {
				continue // unproven within budget; skip this instance
			}
			solved++
			row.Algos[AlgoILP].Cost.Add(exactRes.Bound)
			row.Algos[AlgoILP].TimeMS.AddDuration(ilpTime)

			if exactRes.Bound > msa.FinalCost+1e-5 {
				return nil, fmt.Errorf("gapstudy: ILP bound %v above MSA %v (solver bug)",
					exactRes.Bound, msa.FinalCost)
			}
			row.Algos[AlgoMSA].Cost.Add(msa.FinalCost)
			row.Algos[AlgoMSA].TimeMS.AddDuration(0)
			if sca, err := baseline.SCA(net, task, core.Options{}); err == nil {
				row.Algos[AlgoSCA].Cost.Add(sca.FinalCost)
			}
			if rsa, err := baseline.RSA(net, task, rng, core.Options{}); err == nil {
				row.Algos[AlgoRSA].Cost.Add(rsa.FinalCost)
			}
		}
		if solved == 0 {
			return nil, fmt.Errorf("gapstudy: no instance of size %d solved to optimality", n)
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig, nil
}

// tinyInstance builds a small dense-simplex-friendly instance: sparse
// graph, all servers, short chain, one or two destinations.
func tinyInstance(rng *rand.Rand, n int) (*nfv.Network, nfv.Task) {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(rng.Intn(v), v, float64(1+rng.Intn(9)))
	}
	for i := 0; i < n/2; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			if _, ok := g.HasEdge(u, v); !ok {
				g.MustAddEdge(u, v, float64(1+rng.Intn(9)))
			}
		}
	}
	k := 1 + rng.Intn(2)
	catalog := make([]nfv.VNF, k+1)
	for f := range catalog {
		catalog[f] = nfv.VNF{ID: f, Name: "f", Demand: 1}
	}
	net := nfv.NewNetwork(g, catalog)
	for v := 0; v < n; v++ {
		if err := net.SetServer(v, float64(1+rng.Intn(3))); err != nil {
			panic(err)
		}
		for f := range catalog {
			if err := net.SetSetupCost(f, v, float64(rng.Intn(8))); err != nil {
				panic(err)
			}
		}
	}
	for i := 0; i < n/2; i++ {
		f, v := rng.Intn(len(catalog)), rng.Intn(n)
		if !net.IsDeployed(f, v) && net.FreeCapacity(v) >= 1 {
			if err := net.Deploy(f, v); err != nil {
				panic(err)
			}
		}
	}
	perm := rng.Perm(n)
	nd := 1 + rng.Intn(2)
	task := nfv.Task{Source: perm[0], Destinations: perm[1 : 1+nd], Chain: make(nfv.SFC, k)}
	for j := range task.Chain {
		task.Chain[j] = j
	}
	return net, task
}
