package experiments

import (
	"fmt"
	"math"
	"strings"
)

// chartWidth is the bar area width in characters.
const chartWidth = 46

// CostChart renders the figure's mean-cost series as horizontal ASCII
// bar charts, one block per x value — a terminal-friendly stand-in for
// the paper's plots when no plotting stack is available.
func (f *Figure) CostChart() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", strings.ToUpper(f.ID), f.Title)

	// Global scale across the whole figure so bars are comparable
	// between x values.
	maxVal := 0.0
	for _, row := range f.Rows {
		for _, algo := range f.AlgOrder {
			if st, ok := row.Algos[algo]; ok && st.Cost.Mean() > maxVal {
				maxVal = st.Cost.Mean()
			}
		}
	}
	if maxVal <= 0 || math.IsInf(maxVal, 0) || math.IsNaN(maxVal) {
		b.WriteString("(no data)\n")
		return b.String()
	}
	algoWidth := 0
	for _, algo := range f.AlgOrder {
		if len(algo) > algoWidth {
			algoWidth = len(algo)
		}
	}
	for _, row := range f.Rows {
		fmt.Fprintf(&b, "%s = %g\n", f.XLabel, row.X)
		for _, algo := range f.AlgOrder {
			st, ok := row.Algos[algo]
			if !ok || st.Cost.N() == 0 {
				continue
			}
			mean := st.Cost.Mean()
			bars := int(math.Round(mean / maxVal * chartWidth))
			if bars < 1 && mean > 0 {
				bars = 1
			}
			fmt.Fprintf(&b, "  %-*s %s %.1f\n", algoWidth, algo, strings.Repeat("#", bars), mean)
		}
	}
	return b.String()
}
