package experiments

import (
	"fmt"
	"math/rand"

	"sftree/internal/core"
	"sftree/internal/dynamic"
	"sftree/internal/netgen"
	"sftree/internal/trace"
)

// Trace-study column names.
const (
	ColAcceptance = "Acceptance%"
	ColCost       = "SessionCost"
	ColPeakInst   = "PeakInstances"
)

// TraceStudy evaluates the dynamic-session extension: on one 60-node
// network, sweep the Poisson arrival rate and measure the acceptance
// ratio, mean per-session cost, and peak live-instance footprint. As
// load grows, overlapping sessions compete for node capacity (lower
// acceptance) but also share instances (lower per-session cost) — the
// tension this study quantifies. Columns reuse the Figure schema; the
// time column is unused.
func TraceStudy(cfg Config) (*Figure, error) {
	cfg = cfg.normalized()
	fig := &Figure{
		ID:       "tracestudy",
		Title:    "Dynamic sessions: acceptance and cost vs arrival rate",
		XLabel:   "arrival rate",
		AlgOrder: []string{ColAcceptance, ColCost, ColPeakInst},
	}
	for _, rate := range []float64{0.5, 1, 2, 4, 8} {
		row := Row{X: rate, Algos: map[string]*Stat{
			ColAcceptance: {}, ColCost: {}, ColPeakInst: {},
		}}
		for trial := 0; trial < cfg.Trials; trial++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(rate*1000) + int64(trial)*7))
			net, err := netgen.Generate(netgen.PaperConfig(60, 2), rng)
			if err != nil {
				return nil, fmt.Errorf("tracestudy: %w", err)
			}
			wl := trace.DefaultConfig()
			wl.Sessions = 60
			wl.ArrivalRate = rate
			events, err := trace.Generate(net, wl, rng)
			if err != nil {
				return nil, fmt.Errorf("tracestudy: %w", err)
			}
			stats, err := dynamic.RunTrace(dynamic.NewManager(net, core.Options{}), events)
			if err != nil {
				return nil, fmt.Errorf("tracestudy: %w", err)
			}
			row.Algos[ColAcceptance].Cost.Add(100 * stats.AcceptanceRatio)
			row.Algos[ColCost].Cost.Add(stats.CostPerSession.Mean())
			row.Algos[ColPeakInst].Cost.Add(float64(stats.PeakInstances))
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig, nil
}
