package experiments

import (
	"fmt"
	"strings"

	"sftree/internal/metrics"
)

// CostTable renders the figure's traffic-delivery-cost series as an
// aligned text table, one row per x value and one column per
// algorithm, mirroring subfigure (a) of each paper figure.
func (f *Figure) CostTable() string {
	return f.table("traffic delivery cost", func(s *Stat) string {
		return fmt.Sprintf("%10.1f ±%-8.1f", s.Cost.Mean(), s.Cost.StdDev())
	})
}

// TimeTable renders the running-time series (milliseconds), mirroring
// subfigure (b) of each paper figure.
func (f *Figure) TimeTable() string {
	return f.table("running time (ms)", func(s *Stat) string {
		return fmt.Sprintf("%10.2f ±%-8.2f", s.TimeMS.Mean(), s.TimeMS.StdDev())
	})
}

func (f *Figure) table(caption string, cell func(*Stat) string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s [%s]\n", strings.ToUpper(f.ID), f.Title, caption)
	fmt.Fprintf(&b, "%12s", f.XLabel)
	for _, algo := range f.AlgOrder {
		fmt.Fprintf(&b, " %-20s", algo)
	}
	b.WriteByte('\n')
	for _, row := range f.Rows {
		fmt.Fprintf(&b, "%12g", row.X)
		for _, algo := range f.AlgOrder {
			st, ok := row.Algos[algo]
			if !ok || st.Cost.N() == 0 {
				fmt.Fprintf(&b, " %-20s", "-")
				continue
			}
			fmt.Fprintf(&b, " %-20s", cell(st))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the figure in long form:
// figure,x,algorithm,cost_mean,cost_std,time_ms_mean,time_ms_std,trials.
func (f *Figure) CSV() string {
	var b strings.Builder
	b.WriteString("figure,x,algorithm,cost_mean,cost_std,time_ms_mean,time_ms_std,trials\n")
	for _, row := range f.Rows {
		for _, algo := range f.AlgOrder {
			st, ok := row.Algos[algo]
			if !ok || st.Cost.N() == 0 {
				continue
			}
			fmt.Fprintf(&b, "%s,%g,%s,%.4f,%.4f,%.4f,%.4f,%d\n",
				f.ID, row.X, algo,
				st.Cost.Mean(), st.Cost.StdDev(),
				st.TimeMS.Mean(), st.TimeMS.StdDev(), st.Cost.N())
		}
	}
	return b.String()
}

// Summary reports the paper's headline comparisons for the figure: the
// average and maximum cost reduction of MSA relative to RSA across the
// sweep, and — when the optimality reference ran — the average
// empirical approximation ratio of MSA.
func (f *Figure) Summary() string {
	var redAvg metrics.Sample
	redMax := 0.0
	var ratio metrics.Sample
	for _, row := range f.Rows {
		msa, okM := row.Algos[AlgoMSA]
		rsa, okR := row.Algos[AlgoRSA]
		if okM && okR && rsa.Cost.Mean() > 0 {
			red := metrics.ReductionPct(rsa.Cost.Mean(), msa.Cost.Mean())
			redAvg.Add(red)
			if red > redMax {
				redMax = red
			}
		}
		if opt, ok := row.Algos[AlgoOPT]; ok && okM && opt.Cost.N() > 0 && opt.Cost.Mean() > 0 {
			ratio.Add(msa.Cost.Mean() / opt.Cost.Mean())
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s summary:", strings.ToUpper(f.ID))
	if redAvg.N() > 0 {
		fmt.Fprintf(&b, " MSA vs RSA cost reduction avg %.2f%%, max %.2f%%", redAvg.Mean(), redMax)
	}
	if ratio.N() > 0 {
		if redAvg.N() > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, " MSA/OPT* ratio avg %.3f", ratio.Mean())
	}
	if redAvg.N() == 0 && ratio.N() == 0 {
		b.WriteString(" (no MSA-relative series)")
	}
	b.WriteByte('\n')
	return b.String()
}
