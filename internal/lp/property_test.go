package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomBoundedLP builds a feasible bounded minimization LP: positive
// coefficients, <= rows through the origin's positive orthant, plus a
// box so the optimum is finite even with negative objective entries.
func randomBoundedLP(seed int64) *Problem {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(5)
	p := &Problem{NumVars: n, Objective: make([]float64, n)}
	for j := range p.Objective {
		p.Objective[j] = rng.Float64()*10 - 5
	}
	rows := 1 + rng.Intn(4)
	for i := 0; i < rows; i++ {
		coeffs := map[int]float64{}
		for j := 0; j < n; j++ {
			coeffs[j] = 0.1 + rng.Float64()*3
		}
		p.AddConstraint(coeffs, LE, 1+rng.Float64()*20)
	}
	for j := 0; j < n; j++ {
		p.AddConstraint(map[int]float64{j: 1}, LE, 1+rng.Float64()*10)
	}
	return p
}

// Property: the solver returns Optimal on feasible bounded problems,
// the solution satisfies every constraint, and the objective matches
// the solution vector.
func TestQuickSolutionsFeasibleAndConsistent(t *testing.T) {
	prop := func(seed int64) bool {
		p := randomBoundedLP(seed)
		s, err := Solve(p)
		if err != nil || s.Status != Optimal {
			return false
		}
		var obj float64
		for j, c := range p.Objective {
			if s.X[j] < -1e-7 {
				return false
			}
			obj += c * s.X[j]
		}
		if math.Abs(obj-s.Objective) > 1e-6 {
			return false
		}
		for _, c := range p.Constraints {
			var lhs float64
			for j, v := range c.Coeffs {
				lhs += v * s.X[j]
			}
			switch c.Rel {
			case LE:
				if lhs > c.RHS+1e-6 {
					return false
				}
			case GE:
				if lhs < c.RHS-1e-6 {
					return false
				}
			case EQ:
				if math.Abs(lhs-c.RHS) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: scaling the objective scales the optimum (positive scale).
func TestQuickObjectiveScaling(t *testing.T) {
	prop := func(seed int64, rawScale uint8) bool {
		scale := 0.5 + float64(rawScale%40)/10 // 0.5 .. 4.4
		p := randomBoundedLP(seed)
		s1, err := Solve(p)
		if err != nil || s1.Status != Optimal {
			return false
		}
		scaled := &Problem{NumVars: p.NumVars, Objective: make([]float64, p.NumVars), Constraints: p.Constraints}
		for j, c := range p.Objective {
			scaled.Objective[j] = c * scale
		}
		s2, err := Solve(scaled)
		if err != nil || s2.Status != Optimal {
			return false
		}
		return math.Abs(s2.Objective-scale*s1.Objective) < 1e-5*(1+math.Abs(s1.Objective))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: appending a redundant constraint (a valid row relaxed
// further) leaves the optimum unchanged.
func TestQuickRedundantConstraintInvariance(t *testing.T) {
	prop := func(seed int64) bool {
		p := randomBoundedLP(seed)
		s1, err := Solve(p)
		if err != nil || s1.Status != Optimal {
			return false
		}
		first := p.Constraints[0]
		p.AddConstraint(first.Coeffs, LE, first.RHS*2+1)
		s2, err := Solve(p)
		if err != nil || s2.Status != Optimal {
			return false
		}
		return math.Abs(s1.Objective-s2.Objective) < 1e-6*(1+math.Abs(s1.Objective))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: tightening the feasible region never improves a
// minimization optimum.
func TestQuickTighteningMonotone(t *testing.T) {
	prop := func(seed int64) bool {
		p := randomBoundedLP(seed)
		s1, err := Solve(p)
		if err != nil || s1.Status != Optimal {
			return false
		}
		tight := &Problem{NumVars: p.NumVars, Objective: p.Objective}
		tight.Constraints = append([]Constraint(nil), p.Constraints...)
		first := p.Constraints[0]
		tight.AddConstraint(first.Coeffs, LE, first.RHS*0.7)
		s2, err := Solve(tight)
		if err != nil {
			return false
		}
		if s2.Status == Infeasible {
			return true
		}
		return s2.Status == Optimal && s2.Objective >= s1.Objective-1e-6*(1+math.Abs(s1.Objective))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
