package lp

import (
	"math"
	"math/rand"
	"testing"
)

func TestDualsOnDantzigExample(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18.
	// Known duals (for the max problem): 0, 3/2, 1. Our solver
	// minimizes the negation, so the recovered duals are negated.
	p := &Problem{NumVars: 2, Objective: []float64{-3, -5}}
	p.AddConstraint(map[int]float64{0: 1}, LE, 4)
	p.AddConstraint(map[int]float64{1: 2}, LE, 12)
	p.AddConstraint(map[int]float64{0: 3, 1: 2}, LE, 18)
	s := solveOK(t, p)
	want := []float64{0, -1.5, -1}
	for i, w := range want {
		if math.Abs(s.Duals[i]-w) > 1e-6 {
			t.Errorf("dual[%d] = %v, want %v", i, s.Duals[i], w)
		}
	}
}

func TestStrongDualityOnRandomLPs(t *testing.T) {
	// For min c.x s.t. Ax <= b, x >= 0 the dual objective is y.b with
	// y <= 0 (duals of <= rows in a minimization are non-positive);
	// strong duality: y.b equals the primal optimum.
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 40; trial++ {
		p := randomBoundedLP(rng.Int63())
		s, err := Solve(p)
		if err != nil || s.Status != Optimal {
			t.Fatalf("trial %d: %v %v", trial, s.Status, err)
		}
		var dualObj float64
		for i, c := range p.Constraints {
			y := s.Duals[i]
			if y > 1e-7 {
				t.Fatalf("trial %d: dual %d positive (%v) for a <= row in a minimization", trial, i, y)
			}
			dualObj += y * c.RHS
		}
		if math.Abs(dualObj-s.Objective) > 1e-5*(1+math.Abs(s.Objective)) {
			t.Fatalf("trial %d: strong duality violated: dual %v vs primal %v",
				trial, dualObj, s.Objective)
		}
		// Complementary slackness: y_i * (b_i - a_i.x) == 0.
		for i, c := range p.Constraints {
			var lhs float64
			for j, v := range c.Coeffs {
				lhs += v * s.X[j]
			}
			slack := c.RHS - lhs
			if math.Abs(s.Duals[i]*slack) > 1e-5*(1+math.Abs(s.Objective)) {
				t.Fatalf("trial %d: complementary slackness violated at row %d: y=%v slack=%v",
					trial, i, s.Duals[i], slack)
			}
		}
	}
}

func TestBealeCyclingGuard(t *testing.T) {
	// Beale's classic degenerate LP that cycles under naive Dantzig
	// pivoting. The Bland fallback must terminate with the optimum
	// -1/20.
	p := &Problem{NumVars: 4, Objective: []float64{-0.75, 150, -0.02, 6}}
	p.AddConstraint(map[int]float64{0: 0.25, 1: -60, 2: -1.0 / 25, 3: 9}, LE, 0)
	p.AddConstraint(map[int]float64{0: 0.5, 1: -90, 2: -1.0 / 50, 3: 3}, LE, 0)
	p.AddConstraint(map[int]float64{2: 1}, LE, 1)
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if math.Abs(s.Objective-(-0.05)) > 1e-9 {
		t.Errorf("objective = %v, want -0.05", s.Objective)
	}
}
