// Package lp is a self-contained dense linear-programming solver: a
// two-phase primal simplex over a full tableau, with Dantzig pricing
// and a Bland's-rule fallback to guarantee termination under
// degeneracy. It exists because the paper obtains optimal solutions
// with CPLEX and the Go ecosystem offers no stdlib LP facility; the
// solver targets the small-to-medium models produced by
// internal/sftilp rather than industrial scale.
package lp

import (
	"errors"
	"fmt"
)

// Rel is a constraint relation.
type Rel int

// Constraint relations.
const (
	LE Rel = iota + 1 // <=
	GE                // >=
	EQ                // ==
)

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota + 1
	Infeasible
	Unbounded
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Constraint is one linear constraint with sparse coefficients.
type Constraint struct {
	Coeffs map[int]float64
	Rel    Rel
	RHS    float64
}

// Problem is a minimization LP over non-negative variables:
//
//	min  Objective . x
//	s.t. Constraints, x >= 0
//
// Upper bounds are expressed as explicit <= constraints.
type Problem struct {
	NumVars     int
	Objective   []float64
	Constraints []Constraint
}

// AddConstraint appends a constraint built from a sparse coefficient
// map; the map is copied.
func (p *Problem) AddConstraint(coeffs map[int]float64, rel Rel, rhs float64) {
	cp := make(map[int]float64, len(coeffs))
	for k, v := range coeffs {
		cp[k] = v
	}
	p.Constraints = append(p.Constraints, Constraint{Coeffs: cp, Rel: rel, RHS: rhs})
}

// Solution is the result of Solve.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
	// Duals holds one dual value per constraint at optimality,
	// recovered from the slack columns' reduced costs. Equality
	// constraints (which carry no slack) report zero — use a pair of
	// inequalities when their duals matter.
	Duals []float64
}

// ErrBadProblem reports a structurally invalid problem.
var ErrBadProblem = errors.New("lp: invalid problem")

const (
	eps          = 1e-9
	phase1Eps    = 1e-7
	blandTrigger = 4 // switch to Bland's rule after blandTrigger*m*n Dantzig pivots without progress guarantees
)

// Solve runs the two-phase primal simplex and returns the solution.
// X is populated only when Status == Optimal.
func Solve(p *Problem) (*Solution, error) {
	if p.NumVars <= 0 {
		return nil, fmt.Errorf("%w: %d variables", ErrBadProblem, p.NumVars)
	}
	if len(p.Objective) != p.NumVars {
		return nil, fmt.Errorf("%w: objective has %d coefficients for %d variables",
			ErrBadProblem, len(p.Objective), p.NumVars)
	}
	for i, c := range p.Constraints {
		if c.Rel != LE && c.Rel != GE && c.Rel != EQ {
			return nil, fmt.Errorf("%w: constraint %d has relation %d", ErrBadProblem, i, c.Rel)
		}
		for j := range c.Coeffs {
			if j < 0 || j >= p.NumVars {
				return nil, fmt.Errorf("%w: constraint %d references variable %d", ErrBadProblem, i, j)
			}
		}
	}

	t := newTableau(p)
	// Phase 1: minimize the sum of artificial variables.
	if t.numArtificial > 0 {
		status := t.runSimplex(t.phase1Costs())
		if status == IterLimit {
			return &Solution{Status: IterLimit}, nil
		}
		if t.objectiveValue() > phase1Eps {
			return &Solution{Status: Infeasible}, nil
		}
		t.driveOutArtificials()
	}
	// Phase 2: original objective.
	status := t.runSimplex(t.phase2Costs(p))
	switch status {
	case Unbounded:
		return &Solution{Status: Unbounded}, nil
	case IterLimit:
		return &Solution{Status: IterLimit}, nil
	}
	x := make([]float64, p.NumVars)
	for r, bv := range t.basis {
		if bv < p.NumVars {
			x[bv] = t.rhs(r)
		}
	}
	obj := 0.0
	for j, c := range p.Objective {
		obj += c * x[j]
	}
	return &Solution{Status: Optimal, X: x, Objective: obj, Duals: t.duals()}, nil
}
