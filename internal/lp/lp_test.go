package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	return s
}

func TestSimpleMaximization(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (classic Dantzig
	// example): optimum (2, 6) with value 36. Minimize the negation.
	p := &Problem{NumVars: 2, Objective: []float64{-3, -5}}
	p.AddConstraint(map[int]float64{0: 1}, LE, 4)
	p.AddConstraint(map[int]float64{1: 2}, LE, 12)
	p.AddConstraint(map[int]float64{0: 3, 1: 2}, LE, 18)
	s := solveOK(t, p)
	if math.Abs(s.Objective+36) > 1e-6 {
		t.Errorf("objective = %v, want -36", s.Objective)
	}
	if math.Abs(s.X[0]-2) > 1e-6 || math.Abs(s.X[1]-6) > 1e-6 {
		t.Errorf("x = %v, want (2,6)", s.X)
	}
}

func TestEqualityAndGE(t *testing.T) {
	// min 2x + 3y s.t. x + y = 10, x >= 3, y >= 2. Optimum (8, 2) -> 22.
	p := &Problem{NumVars: 2, Objective: []float64{2, 3}}
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, EQ, 10)
	p.AddConstraint(map[int]float64{0: 1}, GE, 3)
	p.AddConstraint(map[int]float64{1: 1}, GE, 2)
	s := solveOK(t, p)
	if math.Abs(s.Objective-22) > 1e-6 {
		t.Errorf("objective = %v, want 22", s.Objective)
	}
	if math.Abs(s.X[0]-8) > 1e-6 || math.Abs(s.X[1]-2) > 1e-6 {
		t.Errorf("x = %v, want (8,2)", s.X)
	}
}

func TestInfeasible(t *testing.T) {
	// x <= 1 and x >= 2 cannot both hold.
	p := &Problem{NumVars: 1, Objective: []float64{1}}
	p.AddConstraint(map[int]float64{0: 1}, LE, 1)
	p.AddConstraint(map[int]float64{0: 1}, GE, 2)
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x with only x >= 0: unbounded below.
	p := &Problem{NumVars: 1, Objective: []float64{-1}}
	p.AddConstraint(map[int]float64{0: 1}, GE, 0)
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", s.Status)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// -x <= -5  <=>  x >= 5; min x -> 5.
	p := &Problem{NumVars: 1, Objective: []float64{1}}
	p.AddConstraint(map[int]float64{0: -1}, LE, -5)
	s := solveOK(t, p)
	if math.Abs(s.Objective-5) > 1e-6 {
		t.Errorf("objective = %v, want 5", s.Objective)
	}
}

func TestDegenerateProblem(t *testing.T) {
	// Redundant constraints meeting at a degenerate vertex.
	p := &Problem{NumVars: 2, Objective: []float64{-1, -1}}
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, LE, 1)
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, LE, 1) // duplicate
	p.AddConstraint(map[int]float64{0: 2, 1: 2}, LE, 2) // scaled duplicate
	p.AddConstraint(map[int]float64{0: 1}, LE, 1)
	s := solveOK(t, p)
	if math.Abs(s.Objective+1) > 1e-6 {
		t.Errorf("objective = %v, want -1", s.Objective)
	}
}

func TestRedundantEqualities(t *testing.T) {
	// x + y = 4 stated twice; phase 1 must delete the redundant row.
	p := &Problem{NumVars: 2, Objective: []float64{1, 2}}
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, EQ, 4)
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, EQ, 4)
	s := solveOK(t, p)
	if math.Abs(s.Objective-4) > 1e-6 { // all weight on x
		t.Errorf("objective = %v, want 4", s.Objective)
	}
}

func TestBadProblems(t *testing.T) {
	if _, err := Solve(&Problem{NumVars: 0}); !errors.Is(err, ErrBadProblem) {
		t.Errorf("zero vars: %v", err)
	}
	if _, err := Solve(&Problem{NumVars: 2, Objective: []float64{1}}); !errors.Is(err, ErrBadProblem) {
		t.Errorf("bad objective len: %v", err)
	}
	p := &Problem{NumVars: 1, Objective: []float64{1}}
	p.Constraints = append(p.Constraints, Constraint{Coeffs: map[int]float64{5: 1}, Rel: LE, RHS: 1})
	if _, err := Solve(p); !errors.Is(err, ErrBadProblem) {
		t.Errorf("var out of range: %v", err)
	}
	p2 := &Problem{NumVars: 1, Objective: []float64{1}}
	p2.Constraints = append(p2.Constraints, Constraint{Coeffs: map[int]float64{0: 1}, RHS: 1})
	if _, err := Solve(p2); !errors.Is(err, ErrBadProblem) {
		t.Errorf("missing relation: %v", err)
	}
}

// TestAgainstVertexEnumeration cross-checks the simplex on random
// 2-variable LPs whose optimum is found independently by enumerating
// all intersections of constraint boundaries (including the axes) and
// keeping the best feasible vertex.
func TestAgainstVertexEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 80; trial++ {
		nc := 3 + rng.Intn(4)
		// All-<= constraints with positive coefficients and RHS keep the
		// feasible region a bounded polytope containing the origin.
		type row struct{ a, b, rhs float64 }
		rows := make([]row, nc)
		for i := range rows {
			rows[i] = row{a: 0.2 + rng.Float64()*2, b: 0.2 + rng.Float64()*2, rhs: 1 + rng.Float64()*9}
		}
		obj := []float64{-(rng.Float64()*4 + 0.1), -(rng.Float64()*4 + 0.1)} // minimize negative => maximize

		p := &Problem{NumVars: 2, Objective: obj}
		for _, r := range rows {
			p.AddConstraint(map[int]float64{0: r.a, 1: r.b}, LE, r.rhs)
		}
		got := solveOK(t, p)

		// Vertex enumeration: boundary lines are the nc constraints
		// plus x=0 and y=0.
		type line struct{ a, b, c float64 } // a*x + b*y = c
		lines := make([]line, 0, nc+2)
		for _, r := range rows {
			lines = append(lines, line{r.a, r.b, r.rhs})
		}
		lines = append(lines, line{1, 0, 0}, line{0, 1, 0})
		feasible := func(x, y float64) bool {
			if x < -1e-7 || y < -1e-7 {
				return false
			}
			for _, r := range rows {
				if r.a*x+r.b*y > r.rhs+1e-7 {
					return false
				}
			}
			return true
		}
		best := math.Inf(1)
		for i := 0; i < len(lines); i++ {
			for j := i + 1; j < len(lines); j++ {
				det := lines[i].a*lines[j].b - lines[j].a*lines[i].b
				if math.Abs(det) < 1e-12 {
					continue
				}
				x := (lines[i].c*lines[j].b - lines[j].c*lines[i].b) / det
				y := (lines[i].a*lines[j].c - lines[j].a*lines[i].c) / det
				if feasible(x, y) {
					if v := obj[0]*x + obj[1]*y; v < best {
						best = v
					}
				}
			}
		}
		if math.Abs(got.Objective-best) > 1e-5 {
			t.Fatalf("trial %d: simplex %v vs vertex enumeration %v", trial, got.Objective, best)
		}
	}
}
