package lp

import "math"

// tableau is the dense full-tableau simplex state. Columns are laid
// out as [structural | slack/surplus | artificial]; every row keeps
// its right-hand side non-negative (primal feasibility).
type tableau struct {
	numStruct     int
	numSlack      int
	numArtificial int
	artStart      int // first artificial column index

	a     [][]float64 // m rows of numCols entries
	b     []float64   // m right-hand sides
	basis []int       // basic variable per row

	// slackOf[i] is the slack/surplus column of original constraint i
	// (-1 for equalities) and slackSign[i] its coefficient (+1 for <=,
	// -1 for >= after RHS normalization); rowFlip[i] is -1 when the
	// constraint was negated to keep its RHS non-negative. Together
	// they let Duals read y off the final cost row.
	slackOf   []int
	slackSign []float64
	rowFlip   []float64

	costRow []float64
	objVal  float64
}

func newTableau(p *Problem) *tableau {
	m := len(p.Constraints)
	numSlack, numArt := 0, 0
	for _, c := range p.Constraints {
		rhs, rel := c.RHS, c.Rel
		if rhs < 0 {
			rel = flip(rel)
		}
		switch rel {
		case LE:
			numSlack++
		case GE:
			numSlack++
			numArt++
		case EQ:
			numArt++
		}
	}
	t := &tableau{
		numStruct:     p.NumVars,
		numSlack:      numSlack,
		numArtificial: numArt,
		artStart:      p.NumVars + numSlack,
		a:             make([][]float64, m),
		b:             make([]float64, m),
		basis:         make([]int, m),
		slackOf:       make([]int, m),
		slackSign:     make([]float64, m),
		rowFlip:       make([]float64, m),
	}
	numCols := p.NumVars + numSlack + numArt
	slackIdx, artIdx := p.NumVars, t.artStart
	for r, c := range p.Constraints {
		row := make([]float64, numCols)
		sign := 1.0
		rhs, rel := c.RHS, c.Rel
		if rhs < 0 {
			sign = -1
			rhs = -rhs
			rel = flip(rel)
		}
		t.rowFlip[r] = sign
		for j, v := range c.Coeffs {
			row[j] += sign * v
		}
		switch rel {
		case LE:
			row[slackIdx] = 1
			t.basis[r] = slackIdx
			t.slackOf[r] = slackIdx
			t.slackSign[r] = 1
			slackIdx++
		case GE:
			row[slackIdx] = -1
			t.slackOf[r] = slackIdx
			t.slackSign[r] = -1
			slackIdx++
			row[artIdx] = 1
			t.basis[r] = artIdx
			artIdx++
		case EQ:
			row[artIdx] = 1
			t.basis[r] = artIdx
			t.slackOf[r] = -1
			artIdx++
		}
		t.a[r] = row
		t.b[r] = rhs
	}
	return t
}

func flip(r Rel) Rel {
	switch r {
	case LE:
		return GE
	case GE:
		return LE
	default:
		return EQ
	}
}

func (t *tableau) numCols() int { return t.numStruct + t.numSlack + t.numArtificial }

func (t *tableau) rhs(r int) float64 { return t.b[r] }

func (t *tableau) objectiveValue() float64 { return t.objVal }

// phase1Costs prices artificial variables at one, everything else zero.
func (t *tableau) phase1Costs() []float64 {
	costs := make([]float64, t.numCols())
	for j := t.artStart; j < t.numCols(); j++ {
		costs[j] = 1
	}
	return costs
}

// phase2Costs extends the problem objective with zero costs for slack
// and artificial columns.
func (t *tableau) phase2Costs(p *Problem) []float64 {
	costs := make([]float64, t.numCols())
	copy(costs, p.Objective)
	return costs
}

// initCostRow recomputes reduced costs and the objective value for the
// current basis: costRow[j] = c_j - c_B . column_j.
func (t *tableau) initCostRow(costs []float64) {
	n := t.numCols()
	t.costRow = make([]float64, n)
	copy(t.costRow, costs)
	t.objVal = 0
	for r, bv := range t.basis {
		cb := costs[bv]
		if cb == 0 {
			continue
		}
		row := t.a[r]
		for j := 0; j < n; j++ {
			t.costRow[j] -= cb * row[j]
		}
		t.objVal += cb * t.b[r]
	}
}

// runSimplex iterates pivots under the given costs until optimality,
// unboundedness, or the iteration limit. Phase-2 calls must not let
// artificial columns re-enter; they are excluded whenever the current
// costs price artificials at zero (phase 1 prices them at one).
func (t *tableau) runSimplex(costs []float64) Status {
	t.initCostRow(costs)
	phase1 := false
	for j := t.artStart; j < t.numCols(); j++ {
		if costs[j] != 0 {
			phase1 = true
			break
		}
	}
	enterLimit := t.numCols()
	if !phase1 {
		enterLimit = t.artStart // artificials may not re-enter in phase 2
	}
	m := len(t.a)
	maxIter := 20000 + 50*(m+t.numCols())
	blandAfter := maxIter / 2
	for iter := 0; iter < maxIter; iter++ {
		enter := t.chooseEntering(enterLimit, iter >= blandAfter)
		if enter == -1 {
			return Optimal
		}
		leave := t.chooseLeaving(enter)
		if leave == -1 {
			return Unbounded
		}
		t.pivot(leave, enter)
	}
	return IterLimit
}

// chooseEntering returns the entering column (reduced cost < -eps), or
// -1 at optimality. Dantzig pricing by default, Bland's rule when
// requested.
func (t *tableau) chooseEntering(limit int, bland bool) int {
	if bland {
		for j := 0; j < limit; j++ {
			if t.costRow[j] < -eps {
				return j
			}
		}
		return -1
	}
	best, bestVal := -1, -eps
	for j := 0; j < limit; j++ {
		if t.costRow[j] < bestVal {
			best, bestVal = j, t.costRow[j]
		}
	}
	return best
}

// chooseLeaving runs the minimum-ratio test on column enter, breaking
// ties by the smallest basis variable (lexicographic safeguard).
func (t *tableau) chooseLeaving(enter int) int {
	best := -1
	bestRatio := math.Inf(1)
	for r := range t.a {
		arj := t.a[r][enter]
		if arj <= eps {
			continue
		}
		ratio := t.b[r] / arj
		if ratio < bestRatio-eps || (ratio < bestRatio+eps && (best == -1 || t.basis[r] < t.basis[best])) {
			best, bestRatio = r, ratio
		}
	}
	return best
}

// pivot makes column enter basic in row leave.
func (t *tableau) pivot(leave, enter int) {
	n := t.numCols()
	prow := t.a[leave]
	pval := prow[enter]
	inv := 1 / pval
	for j := 0; j < n; j++ {
		prow[j] *= inv
	}
	t.b[leave] *= inv
	prow[enter] = 1 // exact

	for r := range t.a {
		if r == leave {
			continue
		}
		factor := t.a[r][enter]
		if factor == 0 {
			continue
		}
		row := t.a[r]
		for j := 0; j < n; j++ {
			row[j] -= factor * prow[j]
		}
		row[enter] = 0 // exact
		t.b[r] -= factor * t.b[leave]
		if t.b[r] < 0 && t.b[r] > -1e-11 {
			t.b[r] = 0 // clamp numeric dust to preserve feasibility
		}
	}
	if factor := t.costRow[enter]; factor != 0 {
		for j := 0; j < n; j++ {
			t.costRow[j] -= factor * prow[j]
		}
		t.costRow[enter] = 0
		// The entering variable takes value theta = b[leave]; the
		// objective moves by its reduced cost times theta.
		t.objVal += factor * t.b[leave]
	}
	t.basis[leave] = enter
}

// duals reads the dual value of every original constraint off the
// final cost row: for constraint i with slack column s and stored
// slack sign sgn, the reduced cost there is -y_i * sgn, and a flipped
// row negates the dual once more. Equality constraints have no slack;
// their duals are reported as NaN-free zeros (a limitation documented
// on Solution.Duals).
func (t *tableau) duals() []float64 {
	out := make([]float64, len(t.slackOf))
	for i, col := range t.slackOf {
		if col < 0 {
			continue // equality: dual not recoverable from a slack column
		}
		out[i] = -t.costRow[col] / t.slackSign[i] * t.rowFlip[i]
	}
	return out
}

// driveOutArtificials removes artificial variables from the basis
// after phase 1: pivot them out where a structural or slack column is
// available, and delete redundant rows where none is.
func (t *tableau) driveOutArtificials() {
	for r := 0; r < len(t.a); r++ {
		if t.basis[r] < t.artStart {
			continue
		}
		pivoted := false
		for j := 0; j < t.artStart; j++ {
			if math.Abs(t.a[r][j]) > 1e-7 {
				t.pivot(r, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant row: delete it.
			last := len(t.a) - 1
			t.a[r] = t.a[last]
			t.b[r] = t.b[last]
			t.basis[r] = t.basis[last]
			t.a = t.a[:last]
			t.b = t.b[:last]
			t.basis = t.basis[:last]
			r--
		}
	}
}
