package lp

import (
	"math/rand"
	"testing"
)

// benchLP builds a feasible bounded LP with the given shape.
func benchLP(vars, rows int) *Problem {
	rng := rand.New(rand.NewSource(1))
	p := &Problem{NumVars: vars, Objective: make([]float64, vars)}
	for j := range p.Objective {
		p.Objective[j] = rng.Float64()*10 - 5
	}
	for i := 0; i < rows; i++ {
		coeffs := map[int]float64{}
		for j := 0; j < vars; j++ {
			if rng.Float64() < 0.3 {
				coeffs[j] = 0.1 + rng.Float64()*3
			}
		}
		if len(coeffs) == 0 {
			coeffs[rng.Intn(vars)] = 1
		}
		p.AddConstraint(coeffs, LE, 5+rng.Float64()*20)
	}
	for j := 0; j < vars; j++ {
		p.AddConstraint(map[int]float64{j: 1}, LE, 10)
	}
	return p
}

func BenchmarkSimplex20x10(b *testing.B) {
	p := benchLP(20, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Solve(p)
		if err != nil || s.Status != Optimal {
			b.Fatalf("status %v err %v", s.Status, err)
		}
	}
}

func BenchmarkSimplex100x50(b *testing.B) {
	p := benchLP(100, 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Solve(p)
		if err != nil || s.Status != Optimal {
			b.Fatalf("status %v err %v", s.Status, err)
		}
	}
}

func BenchmarkSimplex300x150(b *testing.B) {
	p := benchLP(300, 150)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Solve(p)
		if err != nil || s.Status != Optimal {
			b.Fatalf("status %v err %v", s.Status, err)
		}
	}
}
