module sftree

go 1.22
