module sftree

go 1.23
